// TCP/TLS connection model over the simulated network.
//
// Connections cost what they cost in the latency-constrained web the paper
// studies: a TCP handshake RTT, a TLS 1.3 handshake RTT, then one RTT plus
// transmission per request/response exchange. HTTP/1.1 connections carry
// one request at a time (the browser opens up to six per origin); HTTP/2
// connections multiplex and can carry server pushes.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "http/message.h"
#include "netsim/faults.h"
#include "netsim/network.h"
#include "obs/recorder.h"

namespace catalyst::netsim {

enum class Protocol { H1, H2 };

class Connection {
 public:
  using ResponseCallback = std::function<void(http::Response)>;
  using PushCallback = std::function<void(PushedResponse)>;
  /// Announces a PUSH_PROMISE: the tiny promise frame races ahead of the
  /// response bodies, so the client learns "don't request this target,
  /// it is on its way" roughly one propagation delay after the server
  /// commits to pushing.
  using PromiseCallback = std::function<void(const std::string& target)>;
  /// Delivers a 103 Early Hints interim response: the hinted preload
  /// targets arrive ahead of the main response body.
  using HintsCallback =
      std::function<void(const std::vector<std::string>& urls)>;
  /// Fires when the request's exchange fails with a *detectable* error
  /// (connection reset mid-stream, or the connection broke while the
  /// request was still queued). Silent faults — stalls, blackholed
  /// origins — fire nothing; only a client deadline recovers those.
  using ErrorCallback = std::function<void()>;

  /// `client`/`server` are host names registered in `network`. When
  /// `resolve_dns` is set, the handshake additionally pays the network's
  /// DNS lookup delay (the pool sets it on the first connection to an
  /// origin; later connections hit the resolver cache).
  Connection(Network& network, std::string client, std::string server,
             bool tls, Protocol protocol, bool resolve_dns = false);

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Starts the handshake if needed; `on_established` runs (possibly
  /// immediately via the loop) once the connection is usable.
  void connect(EventFn on_established);

  bool established() const { return state_ == State::Established; }

  /// H1: a request is in flight (new sends queue). H2: never busy.
  bool busy() const {
    return protocol_ == Protocol::H1 && inflight_ > 0;
  }
  std::size_t inflight() const { return inflight_; }

  /// Requests in flight plus queued (pool load-balancing metric).
  std::size_t pending() const { return inflight_ + queue_.size(); }

  /// Sends a request; auto-connects when idle. `on_push` receives any
  /// server-pushed responses (H2 only; ignored on H1 connections because
  /// the protocol cannot express them); `on_promise` fires earlier, when
  /// the PUSH_PROMISE frame reaches the client.
  void send_request(http::Request request, ResponseCallback on_response,
                    PushCallback on_push = nullptr,
                    PromiseCallback on_promise = nullptr,
                    HintsCallback on_hints = nullptr,
                    ErrorCallback on_error = nullptr);

  /// Marks the connection dead: queued requests error out, in-flight
  /// exchanges are orphaned (late completions are ignored via pump()'s
  /// state guard), and the pool stops handing the connection new work.
  /// The object stays alive — scheduled callbacks capture `this`, so
  /// destruction waits for close_all() after the loop drains.
  void fail();
  bool broken() const { return state_ == State::Broken; }

  Protocol protocol() const { return protocol_; }
  const std::string& server() const { return server_; }

  /// RTTs consumed so far (handshake + one per completed exchange).
  int rtts_consumed() const { return rtts_consumed_; }
  int requests_completed() const { return requests_completed_; }
  ByteCount bytes_received() const { return bytes_received_; }
  ByteCount bytes_sent() const { return bytes_sent_; }

 private:
  enum class State { Idle, Connecting, Established, Broken };

  struct PendingRequest {
    http::Request request;
    ResponseCallback on_response;
    PushCallback on_push;
    PromiseCallback on_promise;
    HintsCallback on_hints;
    ErrorCallback on_error;
    FaultDecision fault;  // decided when the exchange starts
    // Phase-breakdown bookkeeping (inert unless a recorder is attached).
    // A request that initiated the connection's handshake charges that
    // wait to the Dns/Connect/Tls phases recorded at connect() time, so
    // its queue phase starts at establishment; a request that merely
    // rides an in-progress handshake (or waits behind h1 traffic)
    // charges the whole wait to kQueue. Together the client phases of a
    // fetch sum exactly to its duration.
    TimePoint enqueued{};
    TimePoint exchange_start{};
    bool handshake_owner = false;
    obs::PhaseTimeline timeline;
  };

  void start_exchange(PendingRequest pending);
  void deliver_reply(ServerReply reply, PendingRequest& pending);
  void pump();  // H1: issue the next queued request if idle

  /// Extra slow-start rounds a response transfer pays (updates cwnd_).
  int slow_start_rounds(ByteCount bytes);

  Network& network_;
  std::string client_;
  std::string server_;
  bool tls_;
  Protocol protocol_;
  bool resolve_dns_;
  State state_ = State::Idle;
  TimePoint established_at_{};
  std::vector<EventFn> connect_waiters_;
  std::deque<PendingRequest> queue_;  // H1 serialization
  std::size_t inflight_ = 0;
  ByteCount cwnd_;
  int rtts_consumed_ = 0;
  int requests_completed_ = 0;
  ByteCount bytes_received_ = 0;
  ByteCount bytes_sent_ = 0;
};

}  // namespace catalyst::netsim
