#include "netsim/transport.h"

#include <algorithm>
#include <stdexcept>

#include "obs/selfprof.h"

namespace catalyst::netsim {

Connection::Connection(Network& network, std::string client,
                       std::string server, bool tls, Protocol protocol,
                       bool resolve_dns)
    : network_(network),
      client_(std::move(client)),
      server_(std::move(server)),
      tls_(tls),
      protocol_(protocol),
      resolve_dns_(resolve_dns),
      cwnd_(network.initial_cwnd()) {}

void Connection::connect(EventFn on_established) {
  if (state_ == State::Established) {
    network_.loop().schedule_after(Duration::zero(),
                                   std::move(on_established));
    return;
  }
  if (state_ == State::Broken) return;  // pool must open a fresh connection
  connect_waiters_.push_back(std::move(on_established));
  if (state_ == State::Connecting) return;
  state_ = State::Connecting;
  // TCP handshake costs one RTT before data can flow; TLS 1.3 adds one
  // more. Handshake packets are tiny — propagation dominates, so we charge
  // pure RTTs.
  const int handshake_rtts = tls_ ? 2 : 1;
  rtts_consumed_ += handshake_rtts;
  const Duration rtt = network_.rtt(client_, server_);
  Duration handshake = rtt * handshake_rtts;
  if (resolve_dns_) handshake += network_.dns_lookup();
  if (auto* rec = network_.loop().recorder()) {
    // Handshake phases are charged once per connection, at initiation;
    // the request that triggered the connect owns them (its queue phase
    // starts at establishment — see PendingRequest::handshake_owner).
    rec->record(obs::Phase::kConnect, rtt);
    if (tls_) rec->record(obs::Phase::kTls, rtt);
    if (resolve_dns_) rec->record(obs::Phase::kDns, network_.dns_lookup());
  }
  network_.loop().schedule_after(handshake, [this] {
    if (state_ != State::Connecting) return;  // failed during handshake
    state_ = State::Established;
    established_at_ = network_.loop().now();
    auto waiters = std::move(connect_waiters_);
    connect_waiters_.clear();
    for (auto& waiter : waiters) waiter();
    pump();
  });
}

void Connection::fail() {
  if (state_ == State::Broken) return;
  state_ = State::Broken;
  connect_waiters_.clear();
  // Error out queued requests via the loop: fail() can run inside a
  // transfer callback, and the error handlers typically re-enter the
  // pool to retry on a fresh connection.
  auto queued = std::move(queue_);
  queue_.clear();
  for (auto& pending : queued) {
    if (!pending.on_error) continue;
    network_.loop().schedule_after(Duration::zero(),
                                   std::move(pending.on_error));
  }
}

void Connection::send_request(http::Request request,
                              ResponseCallback on_response,
                              PushCallback on_push,
                              PromiseCallback on_promise,
                              HintsCallback on_hints,
                              ErrorCallback on_error) {
  if (state_ == State::Broken) {
    if (on_error) {
      network_.loop().schedule_after(Duration::zero(), std::move(on_error));
    }
    return;
  }
  const bool initiates_handshake = state_ == State::Idle;
  queue_.push_back(PendingRequest{std::move(request), std::move(on_response),
                                  std::move(on_push), std::move(on_promise),
                                  std::move(on_hints), std::move(on_error),
                                  FaultDecision{}});
  queue_.back().enqueued = network_.loop().now();
  queue_.back().handshake_owner = initiates_handshake;
  if (state_ != State::Established) {
    connect([] {});
    return;  // pump() runs on establishment
  }
  pump();
}

void Connection::pump() {
  if (state_ != State::Established) return;
  while (!queue_.empty()) {
    if (protocol_ == Protocol::H1 && inflight_ > 0) return;
    PendingRequest pending = std::move(queue_.front());
    queue_.pop_front();
    start_exchange(std::move(pending));
  }
}

void Connection::start_exchange(PendingRequest pending) {
  ++inflight_;
  ++rtts_consumed_;  // request leg + response leg propagation
  obs::count(obs::Sub::kTransport);
  if (network_.loop().recorder() != nullptr) {
    const TimePoint now = network_.loop().now();
    // Owner: handshake time is already in Dns/Connect/Tls, queue starts
    // at establishment. Rider: the whole wait (including any handshake it
    // rode) is queueing.
    const TimePoint ready =
        pending.handshake_owner ? established_at_ : pending.enqueued;
    pending.timeline.add(obs::Phase::kQueue, now - ready);
    pending.exchange_start = now;
  }
  if (FaultPlan* plan = network_.fault_plan()) {
    pending.fault = plan->next_request();
  }
  const ByteCount request_bytes = pending.request.wire_size();
  bytes_sent_ += request_bytes;

  // Move the request to the server, hand it to the application, then move
  // the reply (and any pushes) back.
  auto shared = std::make_shared<PendingRequest>(std::move(pending));
  network_.send_bytes(client_, server_, request_bytes, [this, shared] {
    if (FaultPlan* plan = network_.fault_plan()) {
      if (plan->origin_dark(network_.loop().now())) {
        // Dark origin: the request's bytes crossed the wire but nothing
        // answers and no error is raised — blackhole. The client deadline
        // timer is the only way out; the exchange stays in flight.
        plan->note_blackholed();
        return;
      }
      if (shared->fault.server_error) {
        // The load balancer is up but the application is down: a 503
        // comes back without the origin handler ever running.
        ServerReply reply;
        reply.response = http::Response::make(http::Status::ServiceUnavailable);
        reply.response.finalize(network_.loop().now());
        deliver_reply(std::move(reply), *shared);
        return;
      }
    }
    const RequestHandler& handler = network_.host(server_).handler();
    if (!handler) {
      throw std::logic_error("Connection: host " + server_ +
                             " has no request handler");
    }
    handler(shared->request, [this, shared](ServerReply reply) {
      deliver_reply(std::move(reply), *shared);
    });
  });
}

void Connection::deliver_reply(ServerReply reply, PendingRequest& pending) {
  obs::ScopedTimer prof_timer(obs::Sub::kTransport);
  ResponseCallback on_response = std::move(pending.on_response);
  PushCallback on_push = std::move(pending.on_push);
  PromiseCallback on_promise = std::move(pending.on_promise);

  if (pending.fault.drop_mid_stream || pending.fault.stall) {
    // The response transfer dies partway: a fraction of the bytes occupy
    // the wire (and contend with healthy flows), then either the
    // connection surfaces an error (drop — think RST) or nothing more
    // ever happens (stall; only a client deadline recovers). Hints and
    // pushes ride the same doomed stream and are lost with it.
    const ByteCount full = reply.response.wire_size();
    const ByteCount cut = std::max<ByteCount>(
        1, static_cast<ByteCount>(
               static_cast<double>(full) * pending.fault.progress_fraction));
    bytes_received_ += cut;
    const bool drop = pending.fault.drop_mid_stream;
    auto transfer = [this, cut, drop,
                     on_error = std::move(pending.on_error)]() mutable {
      network_.send_bytes(server_, client_, cut,
                          [this, drop, on_error = std::move(on_error)] {
                            if (!drop) return;  // stall: silence
                            --inflight_;
                            if (protocol_ == Protocol::H1) {
                              // Framing is broken mid-message; the whole
                              // connection is unusable. H2 loses only the
                              // stream (RST_STREAM).
                              fail();
                            }
                            if (on_error) on_error();
                            pump();
                          });
    };
    if (pending.fault.extra_latency > Duration::zero()) {
      network_.loop().schedule_after(pending.fault.extra_latency,
                                     std::move(transfer));
    } else {
      transfer();
    }
    return;
  }

  // 103 Early Hints: a ~150-byte interim response races ahead of the
  // body (it shares the downlink, but its transmission time is
  // negligible next to the full response).
  if (!reply.early_hint_urls.empty() && pending.on_hints) {
    ByteCount hint_bytes = 60;  // status line + Link header boilerplate
    for (const std::string& url : reply.early_hint_urls) {
      hint_bytes += url.size() + 24;
    }
    bytes_received_ += hint_bytes;
    network_.send_bytes(
        server_, client_, hint_bytes,
        [cb = std::move(pending.on_hints),
         urls = std::move(reply.early_hint_urls)] { cb(urls); });
  }
  // Server pushes: H2 only. The tiny PUSH_PROMISE frames race ahead
  // (propagation-dominated), telling the client not to request those
  // targets; the pushed bodies then transfer multiplexed with the main
  // response (concurrent flows share the downlink via processor sharing).
  if (protocol_ == Protocol::H2 && !reply.pushes.empty() && on_push) {
    const Duration propagation = network_.one_way(server_, client_);
    for (PushedResponse& push : reply.pushes) {
      // PUSH_PROMISE frame: 9-octet frame header + promised stream id +
      // a header block announcing the request (~ :path + :method).
      const ByteCount promise_bytes = 9 + 4 + 32 + push.target.size();
      bytes_received_ += promise_bytes + push.response.wire_size();
      if (on_promise) {
        network_.loop().schedule_after(
            propagation,
            [cb = on_promise, target = push.target] { cb(target); });
      }
      auto shared_push = std::make_shared<PushedResponse>(std::move(push));
      const ByteCount push_bytes =
          promise_bytes + shared_push->response.wire_size();
      network_.send_bytes(
          server_, client_, push_bytes,
          [cb = on_push, shared_push] { cb(std::move(*shared_push)); });
    }
  }

  const ByteCount response_bytes = reply.response.wire_size();
  bytes_received_ += response_bytes;

  // Optional TCP slow-start model: the first RTTs of a transfer run below
  // line rate; we charge them as extra latency before the fluid transfer.
  Duration ramp_up = Duration::zero();
  if (network_.model_slow_start()) {
    ramp_up = network_.rtt(client_, server_) *
              slow_start_rounds(response_bytes);
  }
  // Injected latency spike (bufferbloat / rerouting episode): extra
  // delay before the response transfer starts.
  ramp_up += pending.fault.extra_latency;

  // Close out the timeline: Ttfb ran from exchange start to this reply;
  // everything from here to the last byte (ramp_up included) is Transfer.
  obs::PhaseTimeline timeline = pending.timeline;
  TimePoint reply_at{};
  if (network_.loop().recorder() != nullptr) {
    reply_at = network_.loop().now();
    timeline.add(obs::Phase::kTtfb, reply_at - pending.exchange_start);
  }

  auto shared_resp = std::make_shared<http::Response>(
      std::move(reply.response));
  auto transfer = [this, response_bytes, shared_resp, reply_at, timeline,
                   cb = std::move(on_response)]() mutable {
    network_.send_bytes(
        server_, client_, response_bytes,
        [this, shared_resp, reply_at, timeline,
         cb = std::move(cb)]() mutable {
          --inflight_;
          ++requests_completed_;
          if (auto* rec = network_.loop().recorder()) {
            timeline.add(obs::Phase::kTransfer,
                         network_.loop().now() - reply_at);
            rec->record(timeline);
          }
          cb(std::move(*shared_resp));
          pump();
        });
  };
  if (ramp_up > Duration::zero()) {
    network_.loop().schedule_after(ramp_up, std::move(transfer));
  } else {
    transfer();
  }
}

int Connection::slow_start_rounds(ByteCount bytes) {
  // Bandwidth-delay product caps the useful window.
  const Duration rtt = network_.rtt(client_, server_);
  const double bdp_bytes =
      network_.host(client_).downlink().capacity().bytes_per_second() *
      to_seconds(rtt);
  const ByteCount cap = std::max<ByteCount>(
      network_.initial_cwnd(), static_cast<ByteCount>(bdp_bytes));
  int rounds = 0;
  ByteCount sent = 0;
  ByteCount window = cwnd_;
  while (sent + window < bytes && window < cap) {
    sent += window;
    window = std::min<ByteCount>(window * 2, cap);
    ++rounds;
  }
  cwnd_ = window;
  rtts_consumed_ += rounds;
  return rounds;
}

}  // namespace catalyst::netsim
