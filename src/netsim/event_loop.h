// Discrete-event simulation core: a virtual clock plus an ordered event
// queue. Every network, server and browser action in catalyst is an event
// on this loop, which makes whole-page loads deterministic and lets
// experiments "advance the system clock" between visits exactly like the
// paper does for its revisit delays.
//
// Engine layout: callbacks live in a SlabPool (one recycled slot per
// in-flight event, zero steady-state allocation) and the ready queue is a
// flat binary heap of {when, seq, handle} triples. The pool's generation
// check gives O(1) cancel — a cancelled event's handle goes stale, and
// the heap simply skips stale entries when they surface at the top.
//
// Dispatch is batched by virtual timestamp: all events scheduled at the
// earliest pending time pop off the heap in one tight run (ascending seq,
// so ordering is identical to one-at-a-time dispatch — the golden traces
// verify this), then execute back to back with the clock set once and the
// self-profile scope opened once. Events due immediately — zero-delay
// schedules and past times clamped to now — bypass the heap into a ready
// FIFO whose append order *is* (when, seq) order for the current
// timestamp; since the clock never moves backwards, the heap only ever
// holds strictly-future events and the two structures never interleave.
// Cancellation stays correct inside a batch because execution re-checks
// each handle against the pool: an event cancelled by an earlier member
// of its own batch dereferences to nullptr and is skipped. Events a
// callback schedules at the still-current timestamp land in the next
// batch pass, which matches the unbatched (when, seq) order exactly
// because their seq is necessarily higher.
//
// Callbacks are SmallFn, not std::function: the 48-byte inline buffer
// keeps the fetch path's capturing closures out of the heap (libstdc++'s
// std::function spills anything over 16 bytes), which is where most of
// the dispatch overhead lived.
#pragma once

#include <cstdint>
#include <vector>

#include "util/pool.h"
#include "util/smallfn.h"
#include "util/types.h"

namespace catalyst::obs {
class Recorder;
}

namespace catalyst::netsim {

/// Handle for cancelling a scheduled event. Generation-tagged: ids are
/// never reused, so holding one past execution is safe.
using EventId = std::uint64_t;

/// The scheduled-callback type. Move-only; captures up to the inline
/// budget stay allocation-free (see util/smallfn.h).
using EventFn = SmallFn<void()>;

/// Virtual-time event loop. Events at equal times run in scheduling order
/// (stable), which keeps simulations reproducible.
class EventLoop {
 public:
  EventLoop() = default;
  explicit EventLoop(TimePoint start) : now_(start) {}

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (clamped to now if in the past).
  EventId schedule_at(TimePoint when, EventFn fn);

  /// Schedules `fn` after `delay` from now (negative delays clamp to now).
  EventId schedule_after(Duration delay, EventFn fn);

  /// Cancels a pending event. Cancelling an already-run or unknown id is a
  /// harmless no-op.
  void cancel(EventId id);

  /// Runs until the queue is empty. Returns the number of events executed.
  std::size_t run();

  /// Runs events with time <= `deadline`; then sets now() = deadline if the
  /// clock has not already passed it. Returns events executed.
  std::size_t run_until(TimePoint deadline);

  /// Moves the clock forward without running anything (requires an empty
  /// queue; throws otherwise). Used to simulate time between page visits.
  void advance_to(TimePoint when);

  bool empty() const { return pool_.live() == 0; }
  std::size_t pending() const { return pool_.live(); }

  /// Non-owning phase recorder hook. Every subsystem holds a loop (or a
  /// Network that does), so this is the one place a breakdown consumer
  /// needs to attach. Null by default: instrumentation sites check the
  /// pointer and record nothing.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }
  obs::Recorder* recorder() const { return recorder_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    EventId id;
    // Min-heap via std::push_heap's max-heap order: later time (or later
    // seq at equal time) compares less, so the earliest event surfaces.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  /// Runs every event at the earliest pending timestamp <= `deadline` in
  /// one batched pass. Returns events executed (0: nothing runnable).
  std::size_t run_batch(TimePoint deadline);

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> heap_;  // strictly-future events only
  // Events due at the current timestamp, in scheduling order: the next
  // batch to execute. Zero-delay schedules append here, skipping the heap.
  std::vector<EventId> ready_;
  SlabPool<EventFn> pool_;
  // Recycled batch buffers (a stack so re-entrant run() calls from inside
  // a callback each get their own scratch without allocating).
  std::vector<std::vector<EventId>> scratch_;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace catalyst::netsim
