// Discrete-event simulation core: a virtual clock plus an ordered event
// queue. Every network, server and browser action in catalyst is an event
// on this loop, which makes whole-page loads deterministic and lets
// experiments "advance the system clock" between visits exactly like the
// paper does for its revisit delays.
//
// Engine layout: callbacks live in a SlabPool (one recycled slot per
// in-flight event, zero steady-state allocation) and the ready queue is a
// flat binary heap of {when, seq, handle} triples. The pool's generation
// check gives O(1) cancel — a cancelled event's handle goes stale, and
// the heap simply skips stale entries when they surface at the top. This
// replaced a priority_queue plus unordered_map of callbacks plus
// unordered_set of cancelled ids; ordering ((when, seq), i.e. scheduling
// order within a timestamp) is identical, which the golden traces verify.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/pool.h"
#include "util/types.h"

namespace catalyst::obs {
class Recorder;
}

namespace catalyst::netsim {

/// Handle for cancelling a scheduled event. Generation-tagged: ids are
/// never reused, so holding one past execution is safe.
using EventId = std::uint64_t;

/// Virtual-time event loop. Events at equal times run in scheduling order
/// (stable), which keeps simulations reproducible.
class EventLoop {
 public:
  EventLoop() = default;
  explicit EventLoop(TimePoint start) : now_(start) {}

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (clamped to now if in the past).
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Schedules `fn` after `delay` from now (negative delays clamp to now).
  EventId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-run or unknown id is a
  /// harmless no-op.
  void cancel(EventId id);

  /// Runs until the queue is empty. Returns the number of events executed.
  std::size_t run();

  /// Runs events with time <= `deadline`; then sets now() = deadline if the
  /// clock has not already passed it. Returns events executed.
  std::size_t run_until(TimePoint deadline);

  /// Moves the clock forward without running anything (requires an empty
  /// queue; throws otherwise). Used to simulate time between page visits.
  void advance_to(TimePoint when);

  bool empty() const { return pool_.live() == 0; }
  std::size_t pending() const { return pool_.live(); }

  /// Non-owning phase recorder hook. Every subsystem holds a loop (or a
  /// Network that does), so this is the one place a breakdown consumer
  /// needs to attach. Null by default: instrumentation sites check the
  /// pointer and record nothing.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }
  obs::Recorder* recorder() const { return recorder_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    EventId id;
    // Min-heap via std::push_heap's max-heap order: later time (or later
    // seq at equal time) compares less, so the earliest event surfaces.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool pop_one();  // runs one runnable event; false if queue exhausted

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> heap_;
  SlabPool<std::function<void()>> pool_;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace catalyst::netsim
