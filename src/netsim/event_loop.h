// Discrete-event simulation core: a virtual clock plus an ordered event
// queue. Every network, server and browser action in catalyst is an event
// on this loop, which makes whole-page loads deterministic and lets
// experiments "advance the system clock" between visits exactly like the
// paper does for its revisit delays.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/types.h"

namespace catalyst::netsim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

/// Virtual-time event loop. Events at equal times run in scheduling order
/// (stable), which keeps simulations reproducible.
class EventLoop {
 public:
  EventLoop() = default;
  explicit EventLoop(TimePoint start) : now_(start) {}

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (clamped to now if in the past).
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Schedules `fn` after `delay` from now (negative delays clamp to now).
  EventId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-run or unknown id is a
  /// harmless no-op.
  void cancel(EventId id);

  /// Runs until the queue is empty. Returns the number of events executed.
  std::size_t run();

  /// Runs events with time <= `deadline`; then sets now() = deadline if the
  /// clock has not already passed it. Returns events executed.
  std::size_t run_until(TimePoint deadline);

  /// Moves the clock forward without running anything (requires an empty
  /// queue; throws otherwise). Used to simulate time between page visits.
  void advance_to(TimePoint when);

  bool empty() const { return queue_.size() == cancelled_.size(); }
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    EventId id;
    // Ordering for a max-heap turned min-heap: later time = lower priority.
    bool operator<(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool pop_one();  // runs one runnable event; false if queue exhausted

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event> queue_;
  std::unordered_set<EventId> cancelled_;
  // Callbacks stored out-of-line so Event stays trivially movable.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace catalyst::netsim
