// Simulated network topology: named hosts with access links, pairwise
// propagation delays, and a message-delivery primitive.
//
// The evaluation topology mirrors the paper's testbed: a client behind a
// throttled access link, origins reachable at a configurable RTT, and (for
// the RDR baseline) a proxy placed near the origins. Contention happens on
// the access links — exactly what browser throttling shapes.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "http/message.h"
#include "netsim/event_loop.h"
#include "netsim/link.h"
#include "util/flat_hash.h"
#include "util/intern.h"
#include "util/types.h"

namespace catalyst::netsim {

class FaultPlan;

/// Access-link capacities of a host.
struct HostSpec {
  Bandwidth uplink = gbps(1);
  Bandwidth downlink = gbps(1);
};

/// A resource pushed alongside a response (HTTP/2 Server Push).
struct PushedResponse {
  std::string target;  // request path the push answers
  http::Response response;
};

/// What a server hands back for one request.
struct ServerReply {
  http::Response response;
  std::vector<PushedResponse> pushes;  // h2 connections only

  /// 103 Early Hints: Link rel=preload targets announced ahead of the
  /// full response (a tiny interim response that races the body).
  std::vector<std::string> early_hint_urls;
};

/// Server application callback: receive a request, eventually respond.
/// Handlers may delay the respond call via the event loop (processing
/// time); respond must be called exactly once.
using RequestHandler =
    std::function<void(const http::Request&, std::function<void(ServerReply)>)>;

class Host {
 public:
  Host(EventLoop& loop, std::string name, const HostSpec& spec);

  const std::string& name() const { return name_; }
  Link& uplink() { return *uplink_; }
  Link& downlink() { return *downlink_; }

  void set_handler(RequestHandler handler) { handler_ = std::move(handler); }
  const RequestHandler& handler() const { return handler_; }

 private:
  std::string name_;
  std::unique_ptr<Link> uplink_;
  std::unique_ptr<Link> downlink_;
  RequestHandler handler_;
};

class Network {
 public:
  explicit Network(EventLoop& loop) : loop_(loop) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  EventLoop& loop() { return loop_; }

  Host& add_host(const std::string& name, const HostSpec& spec = {});
  Host& host(const std::string& name);
  bool has_host(const std::string& name) const;

  /// Sets the symmetric propagation RTT between two hosts.
  void set_rtt(const std::string& a, const std::string& b, Duration rtt);
  Duration rtt(const std::string& a, const std::string& b) const;
  Duration one_way(const std::string& a, const std::string& b) const {
    return rtt(a, b) / 2;
  }

  /// Transfers `bytes` from `from` to `to`: the contended (slower) access
  /// link clocks the bytes, then one-way propagation elapses, then
  /// `on_delivered` runs. This is the only way bytes move in catalyst.
  void send_bytes(const std::string& from, const std::string& to,
                  ByteCount bytes, EventFn on_delivered);

  /// Slow-start modelling knobs (see NetworkConditions::model_slow_start).
  void set_model_slow_start(bool enabled) { model_slow_start_ = enabled; }
  bool model_slow_start() const { return model_slow_start_; }

  /// DNS resolution delay paid once per (client, origin) pair — the first
  /// connection to an origin resolves its name before the TCP handshake.
  void set_dns_lookup(Duration delay) { dns_lookup_ = delay; }
  Duration dns_lookup() const { return dns_lookup_; }

  /// Initial congestion window (RFC 6928 default: 10 MSS).
  ByteCount initial_cwnd() const { return 10 * 1460; }

  /// Total bytes moved through the network so far.
  ByteCount total_bytes_transferred() const { return total_bytes_; }

  /// Fault-injection plan consulted by connections (non-owning; nullptr —
  /// the default — means the fault layer is not wired and transport code
  /// takes its original paths untouched).
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }
  FaultPlan* fault_plan() const { return fault_plan_; }

 private:
  EventLoop& loop_;
  // Host names are interned once; every per-request host()/rtt() lookup
  // is then an integer flat-hash probe instead of a string tree walk.
  FlatHashMap<HostId, std::unique_ptr<Host>> hosts_;
  // Symmetric pair key: (lower id << 32) | higher id.
  FlatHashMap<std::uint64_t, Duration> rtts_;
  bool model_slow_start_ = false;
  Duration dns_lookup_ = Duration::zero();
  ByteCount total_bytes_ = 0;
  FaultPlan* fault_plan_ = nullptr;
};

}  // namespace catalyst::netsim
