// Deterministic fault injection for the simulated network.
//
// The paper evaluates CacheCatalyst on clean throttled links; production
// networks lose responses, stall transfers, and take origins down. This
// layer injects those faults *deterministically*: every per-request
// decision is a pure function of (fault_seed, stream, request_ordinal) —
// the same keying discipline as the fleet's per-user RNG — so a faulty
// fleet run is bit-identical across thread counts and repeat runs.
//
// Fault taxonomy (mutually exclusive per request, drawn from one uniform):
//   * mid-stream drop  — the response transfer is cut after a fraction of
//     its bytes; the connection surfaces an error (think TCP RST), the
//     client can retry immediately.
//   * stall            — the response is cut silently; nothing ever
//     arrives and no error is raised. Only a client deadline timer
//     recovers from this.
//   * server error     — the origin answers 503 instead of invoking its
//     handler (application down behind a live load balancer).
// Orthogonally, a request may draw an extra latency spike, and the origin
// may be inside a scheduled outage window, in which case requests reaching
// it are blackholed (stall semantics) regardless of the per-request draw.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace catalyst::netsim {

/// Fault-injection knobs. All rates are per-request probabilities in
/// [0, 1]; everything at zero (the default) disables the layer entirely —
/// no RNG is consulted and no behaviour changes.
struct FaultSpec {
  /// Probability the response transfer fails mid-stream with a
  /// detectable connection error.
  double loss_rate = 0.0;

  /// Probability the response transfer stalls silently (no error; the
  /// client's deadline timer is the only way out).
  double stall_rate = 0.0;

  /// Probability the origin answers 503 Service Unavailable.
  double server_error_rate = 0.0;

  /// Probability a request pays `latency_spike` of extra delay before
  /// its response transfer (bufferbloat / rerouting episodes).
  double latency_spike_rate = 0.0;
  Duration latency_spike = milliseconds(400);

  /// Fraction of each `outage_period` during which origins are dark:
  /// requests arriving at a dark origin are blackholed. The window's
  /// phase within the period is derived from `fault_seed`.
  double outage_fraction = 0.0;
  Duration outage_period = hours(1);

  /// Master seed for all fault decisions.
  std::uint64_t fault_seed = 2024;

  /// Decision stream, forked off the seed — fleet runs key this by
  /// user id so fault schedules are independent of sharding/threading.
  std::uint64_t stream = 0;

  /// True when any knob is active (the testbed only wires the fault
  /// layer in then — pay-for-what-you-use).
  bool any() const {
    return loss_rate > 0.0 || stall_rate > 0.0 || server_error_rate > 0.0 ||
           latency_spike_rate > 0.0 || outage_fraction > 0.0;
  }
};

/// What happens to one request.
struct FaultDecision {
  bool drop_mid_stream = false;
  bool stall = false;
  bool server_error = false;
  Duration extra_latency{};
  /// Fraction of the response bytes that make it onto the wire before a
  /// drop/stall cuts the transfer (those bytes still occupy the link and
  /// are counted as waste).
  double progress_fraction = 1.0;
};

/// Issues per-request fault decisions and answers outage-window queries.
/// The i-th next_request() call returns a pure function of
/// (spec.fault_seed, spec.stream, i), independent of wall time, thread
/// interleaving, or any other FaultPlan instance.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultSpec& spec);

  /// Decision for the next request on this plan's stream.
  FaultDecision next_request();

  /// True when origins are inside an outage window at `now`. Pure in
  /// (spec, now): all plans with the same seed agree on the schedule.
  bool origin_dark(TimePoint now) const;

  const FaultSpec& spec() const { return spec_; }
  std::uint64_t requests_decided() const { return ordinal_; }

  /// Requests that reached a dark origin and were blackholed (telemetry).
  std::uint64_t blackholed() const { return blackholed_; }
  void note_blackholed() { ++blackholed_; }

  /// Parked-state revival (fleet/parked): fast-forwards a fresh plan to a
  /// parked plan's position. Decisions are pure in (seed, stream, ordinal),
  /// so restoring the ordinal alone makes the revived stream continue
  /// exactly where the parked one stopped.
  void restore_progress(std::uint64_t ordinal, std::uint64_t blackholed) {
    ordinal_ = ordinal;
    blackholed_ = blackholed;
  }

 private:
  FaultSpec spec_;
  std::uint64_t ordinal_ = 0;
  std::uint64_t blackholed_ = 0;
  double outage_phase_seconds_ = 0.0;
};

}  // namespace catalyst::netsim
