#include "netsim/event_loop.h"

#include <algorithm>
#include <stdexcept>

#include "obs/selfprof.h"

namespace catalyst::netsim {

namespace {
constexpr TimePoint kNoDeadline = TimePoint::max();
}  // namespace

EventId EventLoop::schedule_at(TimePoint when, EventFn fn) {
  const EventId id = pool_.acquire();
  *pool_.get(id) = std::move(fn);
  if (when <= now_) {
    // Due immediately (zero-delay schedules and clamped past times): the
    // ready FIFO already is (when, seq) order for time now_, so the event
    // skips the heap entirely.
    ready_.push_back(id);
  } else {
    heap_.push_back(Entry{when, next_seq_++, id});
    std::push_heap(heap_.begin(), heap_.end());
  }
  return id;
}

EventId EventLoop::schedule_after(Duration delay, EventFn fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

void EventLoop::cancel(EventId id) {
  // Releasing makes the handle stale; the heap entry is skipped lazily
  // when it reaches the top. Stale/unknown ids are a no-op.
  pool_.release(id);
}

std::size_t EventLoop::run_batch(TimePoint deadline) {
  for (;;) {
    if (ready_.empty()) {
      // Refill: surface the earliest pending timestamp from the heap,
      // dropping stale (cancelled) tops on the way. Repeated pop_heap
      // yields ascending (when, seq), so the ready run is already in
      // scheduling order.
      while (!heap_.empty() && pool_.get(heap_.front().id) == nullptr) {
        std::pop_heap(heap_.begin(), heap_.end());
        heap_.pop_back();
      }
      if (heap_.empty()) return 0;
      const TimePoint when = heap_.front().when;
      if (when > deadline) return 0;
      now_ = when;
      do {
        ready_.push_back(heap_.front().id);
        std::pop_heap(heap_.begin(), heap_.end());
        heap_.pop_back();
      } while (!heap_.empty() && heap_.front().when == when);
    } else if (now_ > deadline) {
      // Ready events carry the current timestamp; a deadline already
      // behind the clock runs nothing.
      return 0;
    }

    // Fast path: a lone ready event skips the batch-buffer shuffle. It
    // may still be stale (cancelled after entering the FIFO) — loop on.
    if (ready_.size() == 1) {
      const EventId id = ready_.back();
      ready_.clear();
      EventFn* slot = pool_.get(id);
      if (slot == nullptr) continue;
      EventFn fn = std::move(*slot);
      pool_.release(id);
      obs::ScopedTimer timer(obs::Sub::kLoop);
      obs::count(obs::Sub::kLoop);
      fn();
      return 1;
    }

    // Swap the ready run into a recycled batch buffer before executing
    // anything: callbacks append their zero-delay schedules to the (now
    // empty) ready FIFO, which forms the next batch — their seq is
    // necessarily higher, so ordering matches one-at-a-time dispatch.
    std::vector<EventId> batch;
    if (!scratch_.empty()) {
      batch = std::move(scratch_.back());
      scratch_.pop_back();
    }
    batch.swap(ready_);
    std::size_t executed = 0;
    {
      // One profile scope per batch instead of per event; nested
      // subsystem scopes still carve out their own exclusive segments,
      // so attribution is unchanged — only the per-event open/close
      // overhead goes away.
      obs::ScopedTimer timer(obs::Sub::kLoop);
      for (const EventId id : batch) {
        // Re-check liveness at execution: an earlier batch member may
        // have cancelled this event (stale handles dereference to
        // nullptr even if the slot was re-acquired for a new event).
        EventFn* slot = pool_.get(id);
        if (slot == nullptr) continue;
        // Move the callback out and free its slot before running: the
        // callback may schedule (growing the slab) or cancel.
        EventFn fn = std::move(*slot);
        pool_.release(id);
        obs::count(obs::Sub::kLoop);
        fn();
        ++executed;
      }
    }
    batch.clear();
    scratch_.push_back(std::move(batch));
    // A batch can execute nothing if every member was cancelled after
    // entering the FIFO; more work may still be pending — loop on.
    if (executed != 0) return executed;
  }
}

std::size_t EventLoop::run() {
  // run_batch returns 0 only when nothing is runnable (it loops past
  // fully-cancelled batches internally).
  std::size_t executed = 0;
  while (const std::size_t n = run_batch(kNoDeadline)) executed += n;
  return executed;
}

std::size_t EventLoop::run_until(TimePoint deadline) {
  std::size_t executed = 0;
  while (const std::size_t n = run_batch(deadline)) executed += n;
  if (now_ < deadline) now_ = deadline;
  return executed;
}

void EventLoop::advance_to(TimePoint when) {
  if (pending() != 0) {
    throw std::logic_error("EventLoop::advance_to with pending events");
  }
  heap_.clear();  // only stale entries can remain; drop them
  ready_.clear();
  if (when > now_) now_ = when;
}

}  // namespace catalyst::netsim
