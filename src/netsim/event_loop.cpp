#include "netsim/event_loop.h"

#include <algorithm>
#include <stdexcept>

#include "obs/selfprof.h"

namespace catalyst::netsim {

EventId EventLoop::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const EventId id = pool_.acquire();
  *pool_.get(id) = std::move(fn);
  heap_.push_back(Entry{when, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end());
  return id;
}

EventId EventLoop::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

void EventLoop::cancel(EventId id) {
  // Releasing makes the handle stale; the heap entry is skipped lazily
  // when it reaches the top. Stale/unknown ids are a no-op.
  pool_.release(id);
}

bool EventLoop::pop_one() {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    std::function<void()>* slot = pool_.get(top.id);
    if (slot == nullptr) continue;  // cancelled
    // Move the callback out and free its slot before running: the
    // callback may schedule (growing the slab) or cancel.
    std::function<void()> fn = std::move(*slot);
    pool_.release(top.id);
    now_ = top.when;
    obs::count(obs::Sub::kLoop);
    {
      obs::ScopedTimer timer(obs::Sub::kLoop);
      fn();
    }
    return true;
  }
  return false;
}

std::size_t EventLoop::run() {
  std::size_t executed = 0;
  while (pop_one()) ++executed;
  return executed;
}

std::size_t EventLoop::run_until(TimePoint deadline) {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (pool_.get(top.id) == nullptr) {  // cancelled: drop and rescan
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      continue;
    }
    if (top.when > deadline) break;
    if (pop_one()) ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

void EventLoop::advance_to(TimePoint when) {
  if (pending() != 0) {
    throw std::logic_error("EventLoop::advance_to with pending events");
  }
  heap_.clear();  // only stale entries can remain; drop them
  if (when > now_) now_ = when;
}

}  // namespace catalyst::netsim
