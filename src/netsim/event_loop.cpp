#include "netsim/event_loop.h"

#include <stdexcept>

namespace catalyst::netsim {

EventId EventLoop::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId EventLoop::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

void EventLoop::cancel(EventId id) {
  if (callbacks_.erase(id) > 0) cancelled_.insert(id);
}

bool EventLoop::pop_one() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (const auto c = cancelled_.find(ev.id); c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    const auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // defensive; should not happen
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.when;
    fn();
    return true;
  }
  return false;
}

std::size_t EventLoop::run() {
  std::size_t executed = 0;
  while (pop_one()) ++executed;
  return executed;
}

std::size_t EventLoop::run_until(TimePoint deadline) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.contains(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    if (pop_one()) ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

void EventLoop::advance_to(TimePoint when) {
  if (pending() != 0) {
    throw std::logic_error("EventLoop::advance_to with pending events");
  }
  if (when > now_) now_ = when;
}

}  // namespace catalyst::netsim
