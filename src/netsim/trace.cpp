#include "netsim/trace.h"

#include <algorithm>

#include "util/strings.h"

namespace catalyst::netsim {

std::string_view to_string(FetchSource source) {
  switch (source) {
    case FetchSource::Network:
      return "network";
    case FetchSource::BrowserCache:
      return "cache";
    case FetchSource::NotModified:
      return "304";
    case FetchSource::SwCache:
      return "sw-cache";
    case FetchSource::Push:
      return "push";
  }
  return "?";
}

std::string_view to_string(ServeClass cls) {
  switch (cls) {
    case ServeClass::Unchecked:
      return "unchecked";
    case ServeClass::Fresh:
      return "fresh";
    case ServeClass::AllowedStale:
      return "allowed-stale";
    case ServeClass::Violation:
      return "violation";
    case ServeClass::PoisonedServe:
      return "poisoned-serve";
    case ServeClass::CrossUserLeak:
      return "cross-user-leak";
  }
  return "?";
}

std::string TraceLog::render_waterfall(int width) const {
  if (traces_.empty()) return "(no fetches)\n";
  TimePoint t0 = traces_.front().start;
  TimePoint t1 = traces_.front().finish;
  std::size_t name_width = 0;
  for (const FetchTrace& t : traces_) {
    t0 = std::min(t0, t.start);
    t1 = std::max(t1, t.finish);
    name_width = std::max(name_width, t.url.size());
  }
  const double total = std::max(1e-9, to_seconds(t1 - t0));

  std::string out;
  for (const FetchTrace& t : traces_) {
    const double begin = to_seconds(t.start - t0) / total;
    const double end = to_seconds(t.finish - t0) / total;
    const int begin_col = static_cast<int>(begin * width);
    const int end_col =
        std::max(begin_col + 1, static_cast<int>(end * width));
    std::string bar(static_cast<std::size_t>(width), '.');
    for (int c = begin_col; c < end_col && c < width; ++c) {
      bar[static_cast<std::size_t>(c)] = '#';
    }
    std::string name(t.url);
    name.resize(name_width, ' ');
    out += str_format("  %s |%s| %7.1f-%-7.1fms %-8s %s\n", name.c_str(),
                      bar.c_str(), to_millis(t.start - t0),
                      to_millis(t.finish - t0),
                      std::string(to_string(t.source)).c_str(),
                      t.bytes_down > 0 ? format_bytes(t.bytes_down).c_str()
                                       : "-");
  }
  return out;
}

}  // namespace catalyst::netsim
