#include "edge/pop.h"

#include <utility>

#include "cache/freshness.h"
#include "http/headers.h"
#include "util/strings.h"

namespace catalyst::edge {

namespace {

/// Sizes the TinyLFU history from the byte budget: assume a typical web
/// object of ~16 KiB, the order of this simulator's generated assets.
std::size_t expected_entries_for(ByteCount capacity) {
  return static_cast<std::size_t>(capacity / KiB(16)) + 16;
}

}  // namespace

EdgePop::EdgePop(EdgeConfig config)
    : config_(config),
      host_name_("edge.pop" + std::to_string(config.pop_id)),
      store_(config.capacity, config.protected_fraction),
      admission_(expected_entries_for(config.capacity)),
      // Forked by pop id so every PoP draws an independent latency-jitter
      // stream from the same master seed — deterministic regardless of
      // which thread replays which PoP.
      flash_rng_(Rng(config.flash.seed)
                     .fork(static_cast<std::uint64_t>(config.pop_id))) {
  if (config_.flash.enabled()) {
    flash_ = std::make_unique<FlashTier>(config_.flash);
  }
}

bool EdgePop::entry_is_fresh(const cache::CacheEntry& entry,
                             TimePoint now) const {
  // Time-travel guard: the fleet replays users sequentially, so shared
  // state can have been filled at a simulated time later than this user's
  // clock. Serving it fresh would leak the future; demote to stale so it
  // revalidates like any expired entry.
  if (entry.response_time > now) return false;
  if (cache::is_negative_status(entry.response.status)) {
    return config_.negative.enabled &&
           cache::is_negative_fresh(entry, now, config_.negative);
  }
  const http::CacheControl cc = entry.response.cache_control();
  return !cc.must_revalidate && !cc.no_cache &&
         cache::is_fresh(entry, now, config_.allow_heuristic);
}

EdgeLookupResult EdgePop::lookup(const std::string& key, TimePoint now) {
  cache::CacheEntry* entry = store_.get(key);
  if (entry == nullptr) return EdgeLookupResult{EdgeLookupDecision::Miss};
  if (entry_is_fresh(*entry, now)) {
    if (cache::is_negative_status(entry->response.status)) {
      ++stats_.negative_hits;
    }
    return EdgeLookupResult{EdgeLookupDecision::Fresh, entry};
  }
  if (cache::is_negative_status(entry->response.status)) {
    // An expired error has nothing to revalidate; drop it so the next
    // reference refetches (a future-filled one waits for its clock).
    if (entry->response_time <= now) store_.erase(key);
    return EdgeLookupResult{EdgeLookupDecision::Miss};
  }
  if (entry->etag() ||
      entry->response.headers.contains(http::kLastModified)) {
    return EdgeLookupResult{EdgeLookupDecision::Stale, entry};
  }
  return EdgeLookupResult{EdgeLookupDecision::Miss};
}

bool EdgePop::admit_and_store(const std::string& key, http::Response response,
                              TimePoint request_time, TimePoint response_time,
                              io::AioEngine* aio) {
  const http::CacheControl cc = response.cache_control();
  // Shared-cache storage rules (RFC 9111 §3): private responses are for
  // the user's cache only, no-store is for nobody's.
  if (cc.no_store || cc.is_private) {
    ++stats_.rejected_no_store;
    return false;
  }
  if (!http::is_cacheable_status(response.status)) return false;
  const bool negative = cache::is_negative_status(response.status);
  if (negative && (!config_.negative.enabled || cc.no_cache)) return false;
  // The bounded negative TTL is a 404/410's freshness info; everything
  // else still needs explicit freshness or a validator to be reusable.
  if (!negative && !cc.max_age && !cc.no_cache &&
      !response.headers.contains(http::kExpires) &&
      !response.headers.contains(http::kEtagHeader) &&
      !response.headers.contains(http::kLastModified)) {
    return false;
  }

  cache::CacheEntry entry;
  entry.response = std::move(response);
  entry.request_time = request_time;
  entry.response_time = response_time;
  const ByteCount cost = entry.cost();
  if (cost > store_.capacity()) return false;

  // Make room, letting TinyLFU veto the fill: a candidate may only
  // displace victims it has out-requested. With a flash tier, victims
  // demote to the log instead of evaporating.
  while (store_.needs_room(cost)) {
    const auto victim = store_.victim_key();
    if (!victim) break;
    if (config_.tinylfu_admission && !admission_.admit(key, *victim)) {
      ++stats_.admission_rejects;
      return false;
    }
    demote_to_flash(*victim, aio);
    store_.evict_victim();
  }
  if (store_.put(key, std::move(entry))) {
    ++stats_.stores;
    if (negative) ++stats_.negative_stores;
    // Tier exclusivity: the fresh RAM copy supersedes any flash record
    // left over from an earlier demotion.
    if (flash_ != nullptr) flash_->erase(key);
    return true;
  }
  return false;
}

void EdgePop::demote_to_flash(const std::string& victim_key,
                              io::AioEngine* aio) {
  if (flash_ == nullptr) return;
  // peek, not get: a get would promote the victim within the SLRU and
  // make evict_victim() take out an innocent bystander instead.
  const cache::CacheEntry* entry = store_.peek(victim_key);
  if (entry == nullptr) return;
  cache::CacheEntry copy = *entry;
  const ByteCount cost = copy.cost();
  if (flash_->put(victim_key, std::move(copy))) {
    ++stats_.flash_demotions;
    // The demotion is a real device write: it occupies a queue slot for
    // its service time, delaying reads behind it.
    if (aio != nullptr) aio->submit_write(cost);
  }
}

ByteCount EdgePop::flash_entry_cost(const std::string& key) const {
  if (flash_ == nullptr) return 0;
  const cache::CacheEntry* entry = flash_->peek(key);
  return entry == nullptr ? 0 : entry->response.wire_size();
}

FlashReadResult EdgePop::complete_flash_read(const std::string& key,
                                             TimePoint now,
                                             io::AioEngine* aio) {
  if (flash_ == nullptr) return FlashReadResult{FlashReadOutcome::Gone};
  cache::CacheEntry* entry = flash_->get(key);
  // The record can vanish between submit and completion (superseded by a
  // coalesced origin fill, or GC-evicted by demotions the fill caused).
  if (entry == nullptr) return FlashReadResult{FlashReadOutcome::Gone};

  const bool fresh = entry_is_fresh(*entry, now);
  if (!fresh) {
    if (entry->etag() ||
        entry->response.headers.contains(http::kLastModified)) {
      return FlashReadResult{FlashReadOutcome::Stale, entry};
    }
    // Expired and unvalidatable: dead weight in any tier.
    flash_->erase(key);
    return FlashReadResult{FlashReadOutcome::Miss};
  }

  // Fresh: promote to RAM so repeat hits skip the device — unless TinyLFU
  // judges the RAM victims more valuable, in which case the bytes are
  // served from flash and residency stays as it was. Copy first: demoting
  // RAM victims mutates the flash log and invalidates `entry`.
  cache::CacheEntry copy = *entry;
  const ByteCount cost = copy.cost();
  bool admit = cost <= store_.capacity();
  while (admit && store_.needs_room(cost)) {
    const auto victim = store_.victim_key();
    if (!victim) break;
    if (config_.tinylfu_admission && !admission_.admit(key, *victim)) {
      admit = false;
      break;
    }
    demote_to_flash(*victim, aio);
    store_.evict_victim();
  }
  if (admit && !store_.needs_room(cost) && store_.put(key, copy)) {
    flash_->erase(key);
    ++stats_.flash_promotions;
    return FlashReadResult{FlashReadOutcome::Fresh, store_.get(key)};
  }
  ++stats_.flash_promotion_rejects;
  // Re-locate: GC may have moved the record while victims demoted. Its
  // reference bit is set (we just read it), so GC salvages rather than
  // evicts it — but stay defensive about the pointer.
  cache::CacheEntry* kept = flash_->get(key);
  if (kept == nullptr) return FlashReadResult{FlashReadOutcome::Gone};
  return FlashReadResult{FlashReadOutcome::Fresh, kept};
}

cache::CacheEntry* EdgePop::refresh_not_modified(
    const std::string& key, const http::Response& not_modified,
    TimePoint request_time, TimePoint response_time) {
  cache::CacheEntry* entry = store_.get(key);
  // A 304 can answer a conditional launched off a stale *flash* record;
  // refresh it where it lives.
  if (entry == nullptr && flash_ != nullptr) entry = flash_->get(key);
  if (entry == nullptr) return nullptr;
  // RFC 9111 §4.3.4 metadata refresh, plus X-Etag-Config: Catalyst origins
  // send the current subresource validity map on 304s, and forwarding the
  // *stored* (possibly outdated) map would make downstream service workers
  // trust subresources the origin has since changed.
  for (const auto& field : not_modified.headers.fields()) {
    if (iequals(field.name, http::kEtagHeader) ||
        iequals(field.name, http::kCacheControl) ||
        iequals(field.name, http::kExpires) ||
        iequals(field.name, http::kDate) ||
        iequals(field.name, http::kLastModified) ||
        iequals(field.name, http::kXEtagConfig)) {
      entry->response.headers.set(field.name, field.value);
    }
  }
  entry->request_time = request_time;
  entry->response_time = response_time;
  return entry;
}

void EdgePop::note_request(const std::string& key) {
  ++stats_.requests;
  admission_.record(key);
}

void EdgePop::note_hit(ByteCount bytes_served) {
  ++stats_.hits;
  stats_.bytes_served += bytes_served;
}

void EdgePop::note_revalidated_hit(ByteCount bytes_served) {
  ++stats_.revalidated_hits;
  stats_.bytes_served += bytes_served;
}

EdgePopStats EdgePop::stats() const {
  EdgePopStats s = stats_;
  s.evictions = store_.evictions();
  if (flash_ != nullptr) {
    const FlashStats& f = flash_->stats();
    s.flash_stores = f.stores;
    s.flash_evictions = f.evictions;
    s.flash_gc_rewrites = f.gc_rewrites;
    s.flash_host_bytes = f.host_bytes_written;
    s.flash_device_bytes = f.device_bytes_written;
    s.aio = aio_stats_;
  }
  return s;
}

}  // namespace catalyst::edge
