#include "edge/pop.h"

#include <utility>

#include "cache/freshness.h"
#include "http/headers.h"
#include "util/strings.h"

namespace catalyst::edge {

namespace {

/// Sizes the TinyLFU history from the byte budget: assume a typical web
/// object of ~16 KiB, the order of this simulator's generated assets.
std::size_t expected_entries_for(ByteCount capacity) {
  return static_cast<std::size_t>(capacity / KiB(16)) + 16;
}

}  // namespace

EdgePop::EdgePop(EdgeConfig config)
    : config_(config),
      host_name_("edge.pop" + std::to_string(config.pop_id)),
      store_(config.capacity, config.protected_fraction),
      admission_(expected_entries_for(config.capacity)) {}

EdgeLookupResult EdgePop::lookup(const std::string& key, TimePoint now) {
  cache::CacheEntry* entry = store_.get(key);
  if (entry == nullptr) return EdgeLookupResult{EdgeLookupDecision::Miss};
  const http::CacheControl cc = entry->response.cache_control();
  // Time-travel guard: the fleet replays users sequentially, so shared
  // state can have been filled at a simulated time later than this user's
  // clock. Serving it fresh would leak the future; demote to stale so it
  // revalidates like any expired entry.
  const bool from_future = entry->response_time > now;
  if (!from_future && !cc.must_revalidate && !cc.no_cache &&
      cache::is_fresh(*entry, now, config_.allow_heuristic)) {
    return EdgeLookupResult{EdgeLookupDecision::Fresh, entry};
  }
  if (entry->etag() ||
      entry->response.headers.contains(http::kLastModified)) {
    return EdgeLookupResult{EdgeLookupDecision::Stale, entry};
  }
  return EdgeLookupResult{EdgeLookupDecision::Miss};
}

bool EdgePop::admit_and_store(const std::string& key, http::Response response,
                              TimePoint request_time,
                              TimePoint response_time) {
  const http::CacheControl cc = response.cache_control();
  // Shared-cache storage rules (RFC 9111 §3): private responses are for
  // the user's cache only, no-store is for nobody's.
  if (cc.no_store || cc.is_private) {
    ++stats_.rejected_no_store;
    return false;
  }
  if (!http::is_cacheable_status(response.status)) return false;
  if (!cc.max_age && !cc.no_cache &&
      !response.headers.contains(http::kExpires) &&
      !response.headers.contains(http::kEtagHeader) &&
      !response.headers.contains(http::kLastModified)) {
    return false;
  }

  cache::CacheEntry entry;
  entry.response = std::move(response);
  entry.request_time = request_time;
  entry.response_time = response_time;
  const ByteCount cost = entry.cost();
  if (cost > store_.capacity()) return false;

  // Make room, letting TinyLFU veto the fill: a candidate may only
  // displace victims it has out-requested.
  while (store_.needs_room(cost)) {
    const auto victim = store_.victim_key();
    if (!victim) break;
    if (config_.tinylfu_admission && !admission_.admit(key, *victim)) {
      ++stats_.admission_rejects;
      return false;
    }
    store_.evict_victim();
  }
  if (store_.put(key, std::move(entry))) {
    ++stats_.stores;
    return true;
  }
  return false;
}

cache::CacheEntry* EdgePop::refresh_not_modified(
    const std::string& key, const http::Response& not_modified,
    TimePoint request_time, TimePoint response_time) {
  cache::CacheEntry* entry = store_.get(key);
  if (entry == nullptr) return nullptr;
  // RFC 9111 §4.3.4 metadata refresh, plus X-Etag-Config: Catalyst origins
  // send the current subresource validity map on 304s, and forwarding the
  // *stored* (possibly outdated) map would make downstream service workers
  // trust subresources the origin has since changed.
  for (const auto& field : not_modified.headers.fields()) {
    if (iequals(field.name, http::kEtagHeader) ||
        iequals(field.name, http::kCacheControl) ||
        iequals(field.name, http::kExpires) ||
        iequals(field.name, http::kDate) ||
        iequals(field.name, http::kLastModified) ||
        iequals(field.name, http::kXEtagConfig)) {
      entry->response.headers.set(field.name, field.value);
    }
  }
  entry->request_time = request_time;
  entry->response_time = response_time;
  return entry;
}

void EdgePop::note_request(const std::string& key) {
  ++stats_.requests;
  admission_.record(key);
}

void EdgePop::note_hit(ByteCount bytes_served) {
  ++stats_.hits;
  stats_.bytes_served += bytes_served;
}

void EdgePop::note_revalidated_hit(ByteCount bytes_served) {
  ++stats_.revalidated_hits;
  stats_.bytes_served += bytes_served;
}

}  // namespace catalyst::edge
