#include "edge/node.h"

#include <utility>

#include "http/conditional.h"
#include "http/date.h"
#include "obs/recorder.h"
#include "obs/selfprof.h"
#include "util/strings.h"

namespace catalyst::edge {

namespace {

/// Cache keys follow static-handler semantics: the query string does not
/// select a different representation.
std::string path_of(const std::string& target) {
  const auto q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

/// Headers a cache-served response (hit or 304) carries downstream:
/// validators, freshness metadata, and the Catalyst validity map.
bool forwarded_on_304(std::string_view name) {
  return iequals(name, http::kEtagHeader) ||
         iequals(name, http::kCacheControl) ||
         iequals(name, http::kExpires) ||
         iequals(name, http::kDate) ||
         iequals(name, http::kLastModified) ||
         iequals(name, http::kXEtagConfig);
}

}  // namespace

EdgeNode::EdgeNode(EdgePop& pop, netsim::Network& network,
                   std::string origin_host)
    : pop_(pop), network_(network), origin_host_(std::move(origin_host)) {
  if (pop_.config().flash.enabled()) {
    aio_ = std::make_unique<io::AioEngine>(
        network_.loop(), pop_.config().flash.device, pop_.flash_rng(),
        pop_.aio_stats());
  }
  network_.host(pop_.host_name())
      .set_handler([this](const http::Request& request,
                          std::function<void(netsim::ServerReply)> respond) {
        handle(request, std::move(respond));
      });
}

std::string EdgeNode::cache_key(const http::Request& request) const {
  std::string key = origin_host_ + path_of(request.target);
  if (!pop_.config().vulnerable_keying) {
    if (const auto xfh = request.headers.get(http::kXForwardedHost)) {
      key += "|xfh=";
      key += *xfh;
    }
  }
  return key;
}

http::Request EdgeNode::build_upstream(const http::Request& client) const {
  http::Request upstream = http::Request::get(client.target, origin_host_);
  if (const auto xfh = client.headers.get(http::kXForwardedHost)) {
    upstream.headers.set(http::kXForwardedHost, *xfh);
  }
  return upstream;
}

void EdgeNode::handle(const http::Request& request,
                      std::function<void(netsim::ServerReply)> respond) {
  const TimePoint now = network_.loop().now();
  obs::count(obs::Sub::kEdge);
  obs::ScopedTimer prof_timer(obs::Sub::kEdge);
  const std::string key = cache_key(request);
  pop_.note_request(key);

  const EdgeLookupResult found = pop_.lookup(key, now);
  if (found.decision == EdgeLookupDecision::Fresh) {
    reply_to_waiter(Waiter{request, std::move(respond), now},
                    found.entry->response, Served::Hit);
    return;
  }

  // Miss or stale: both need a fetch. Coalesce with any fill already in
  // flight for this key — that fetch's answer serves everyone, whether it
  // is coming from the origin or from the flash device.
  const InternId key_id = tls_intern().intern(key);
  if (Fill* pending = inflight_.find(key_id)) {
    if (pending->flash_read) {
      pop_.note_flash_coalesced();
    } else {
      pop_.note_coalesced();
    }
    pending->waiters.push_back(Waiter{request, std::move(respond), now});
    return;
  }

  // RAM miss with the key resident in flash: read it asynchronously. The
  // fill parks the waiters until the device completes; the completion
  // re-classifies the record (it may have gone stale — or away — while
  // queued) and either serves it or converts to an origin fetch.
  if (found.decision == EdgeLookupDecision::Miss && aio_ != nullptr &&
      pop_.flash_has(key)) {
    Fill fill;
    fill.request_time = now;
    fill.flash_read = true;
    fill.waiters.push_back(Waiter{request, std::move(respond), now});
    inflight_.insert_or_assign(key_id, std::move(fill));
    aio_->submit_read(key, pop_.flash_entry_cost(key),
                      [this, key]() { on_flash_read(key); });
    return;
  }

  Fill fill;
  fill.request_time = now;
  fill.waiters.push_back(Waiter{request, std::move(respond), now});

  // The upstream request is built fresh: client conditionals must not leak
  // upstream (a 304 against the *client's* validator would leave the edge
  // with nothing to serve other waiters). On the stale path the edge sends
  // its own stored validators instead.
  http::Request upstream = build_upstream(request);
  if (found.decision == EdgeLookupDecision::Stale) {
    const cache::CacheEntry& entry = *found.entry;
    if (const auto etag = entry.etag()) {
      upstream.headers.set(http::kIfNoneMatch, etag->to_string());
    } else if (const auto lm =
                   entry.response.headers.get(http::kLastModified)) {
      upstream.headers.set(http::kIfModifiedSince, *lm);
    }
  }

  inflight_.insert_or_assign(key_id, std::move(fill));
  launch_fetch(key, std::move(upstream));
}

void EdgeNode::on_flash_read(const std::string& key) {
  const TimePoint now = network_.loop().now();
  const InternId key_id = tls_intern().find(key);
  Fill* pending = key_id == kNoIntern ? nullptr : inflight_.find(key_id);
  if (pending == nullptr || !pending->flash_read) return;

  const FlashReadResult rr = pop_.complete_flash_read(key, now, aio_.get());
  if (rr.outcome == FlashReadOutcome::Fresh) {
    Fill fill = std::move(*pending);
    inflight_.erase(key_id);
    for (const Waiter& w : fill.waiters) {
      reply_to_waiter(w, rr.entry->response, Served::FlashHit);
    }
    return;
  }

  // Stale, unvalidatable, or vanished while queued: the origin has to
  // answer after all. Convert the fill in place — keeping every parked
  // waiter — into an ordinary origin fetch, conditional when the flash
  // record still has validators to offer.
  pending->flash_read = false;
  pending->request_time = now;
  http::Request upstream =
      build_upstream(pending->waiters.front().request);
  if (rr.outcome == FlashReadOutcome::Stale) {
    const cache::CacheEntry& entry = *rr.entry;
    if (const auto etag = entry.etag()) {
      upstream.headers.set(http::kIfNoneMatch, etag->to_string());
    } else if (const auto lm =
                   entry.response.headers.get(http::kLastModified)) {
      upstream.headers.set(http::kIfModifiedSince, *lm);
    }
  }
  launch_fetch(key, std::move(upstream));
}

void EdgeNode::launch_fetch(const std::string& key, http::Request upstream) {
  pop_.note_origin_fetch();
  origin_connection().send_request(
      std::move(upstream),
      [this, key](http::Response response) {
        on_origin_response(key, std::move(response));
      },
      /*on_push=*/nullptr,  // pushes die at the edge (see header comment)
      /*on_promise=*/nullptr, /*on_hints=*/nullptr,
      [this, key]() { on_origin_error(key); });
}

void EdgeNode::on_origin_response(const std::string& key,
                                  http::Response response) {
  const TimePoint now = network_.loop().now();
  pop_.note_origin_response(response.wire_size());
  const InternId key_id = tls_intern().find(key);
  Fill* pending = key_id == kNoIntern ? nullptr : inflight_.find(key_id);
  if (pending == nullptr) return;

  if (response.status == http::Status::NotModified) {
    pop_.note_origin_not_modified();
    if (cache::CacheEntry* entry = pop_.refresh_not_modified(
            key, response, pending->request_time, now)) {
      Fill fill = std::move(*pending);
      inflight_.erase(key_id);
      for (const Waiter& w : fill.waiters) {
        reply_to_waiter(w, entry->response, Served::Revalidated);
      }
      return;
    }
    // The entry was evicted while its conditional was in flight: the 304
    // refers to bytes the edge no longer holds. Refetch in full, keeping
    // the waiter list.
    if (!pending->retried) {
      pending->retried = true;
      pending->request_time = now;
      launch_fetch(key,
                   build_upstream(pending->waiters.front().request));
      return;
    }
    // An unconditional fetch answered 304 — upstream is misbehaving.
    on_origin_error(key);
    return;
  }

  Fill fill = std::move(*pending);
  inflight_.erase(key_id);
  // admit_and_store applies shared-cache policy (no-store/private/
  // uncacheable status) and TinyLFU admission; waiters are served from the
  // origin bytes either way. 5xx fills are guarded explicitly: a transient
  // upstream failure must reach the coalesced waiters but never become
  // cache content in RAM or flash (is_cacheable_status would reject them
  // too, but negative caching loosened storability — keep the invariant
  // visible at the one place a fill is admitted).
  if (http::code(response.status) < 500) {
    pop_.admit_and_store(key, response, fill.request_time, now, aio_.get());
  }
  for (const Waiter& w : fill.waiters) {
    reply_to_waiter(w, response, Served::Miss);
  }
}

void EdgeNode::on_origin_error(const std::string& key) {
  const InternId key_id = tls_intern().find(key);
  Fill* pending = key_id == kNoIntern ? nullptr : inflight_.find(key_id);
  if (pending == nullptr) return;
  Fill fill = std::move(*pending);
  inflight_.erase(key_id);
  pop_.note_origin_error();
  for (const Waiter& w : fill.waiters) {
    pop_.note_miss();
    http::Response resp = http::Response::make(http::Status::BadGateway);
    resp.body = "edge: origin unreachable";
    resp.finalize(network_.loop().now());
    netsim::ServerReply reply;
    reply.response = std::move(resp);
    network_.loop().schedule_after(
        pop_.config().processing_delay,
        [respond = w.respond, reply = std::move(reply)]() mutable {
          respond(std::move(reply));
        });
  }
}

void EdgeNode::reply_to_waiter(const Waiter& waiter,
                               const http::Response& source, Served served) {
  // Per-waiter conditional: a client revalidating a representation the
  // edge holds gets its 304 here, never touching the origin.
  const std::optional<http::Etag> etag = source.etag();
  std::optional<TimePoint> last_modified;
  if (const auto lm = source.headers.get(http::kLastModified)) {
    last_modified = http::parse_http_date(*lm);
  }
  http::ConditionalOutcome outcome = http::ConditionalOutcome::NotConditional;
  if (etag) {
    outcome = http::evaluate_conditional(waiter.request, *etag,
                                         last_modified);
  }

  http::Response reply;
  if (outcome == http::ConditionalOutcome::NotModified) {
    reply = http::Response::make(http::Status::NotModified);
    // Forward the stored Date rather than stamping a new one: downstream
    // caches compute apparent age from it, which is how resident time at
    // the edge stays visible without an Age header.
    for (const auto& field : source.headers.fields()) {
      if (forwarded_on_304(field.name)) {
        reply.headers.set(field.name, field.value);
      }
    }
  } else {
    reply = source;
  }

  switch (served) {
    case Served::Hit:
      pop_.note_hit(reply.wire_size());
      break;
    case Served::FlashHit:
      pop_.note_flash_hit(reply.wire_size());
      break;
    case Served::Revalidated:
      pop_.note_revalidated_hit(reply.wire_size());
      break;
    case Served::Miss:
      pop_.note_miss();
      break;
  }

  if (auto* rec = network_.loop().recorder()) {
    // Server-side decomposition of the client's Ttfb: PoP arrival to
    // reply dispatch (including the processing delay about to be paid).
    rec->record(obs::Phase::kEdgeLookup,
                network_.loop().now() + pop_.config().processing_delay -
                    waiter.arrival);
  }

  netsim::ServerReply server_reply;
  server_reply.response = std::move(reply);
  network_.loop().schedule_after(
      pop_.config().processing_delay,
      [respond = waiter.respond,
       server_reply = std::move(server_reply)]() mutable {
        respond(std::move(server_reply));
      });
}

netsim::Connection& EdgeNode::origin_connection() {
  if (origin_conn_ && origin_conn_->broken()) {
    // Keep broken connections alive until the loop drains: their scheduled
    // callbacks still capture the object.
    graveyard_.push_back(std::move(origin_conn_));
  }
  if (!origin_conn_) {
    origin_conn_ = std::make_unique<netsim::Connection>(
        network_, pop_.host_name(), origin_host_, /*tls=*/true,
        netsim::Protocol::H2);
  }
  return *origin_conn_;
}

}  // namespace catalyst::edge
