// Flash tier — the large, slow, write-amplification-accounted second
// tier behind a PoP's RAM SLRU.
//
// Real CDN PoPs put two orders of magnitude more flash than RAM behind
// every chassis; what limits how aggressively they use it is not read
// latency but write endurance, so flash cache designs (RIPQ, Pelikan's
// segcache) write a log of fixed-size segments and reclaim whole
// segments at a time. This tier reproduces that shape:
//
//   - admission is demotion: entries enter only when the RAM SLRU evicts
//     them (EdgePop feeds the handoff), never directly from the origin —
//     one-hit wonders die in RAM probation without costing flash writes;
//   - storage is an append-only log of segments; replacing a key marks
//     the old record dead in place (log caches never update in place);
//   - eviction reclaims the oldest segment: dead records are dropped
//     free, live records that were referenced since they were written
//     are salvaged to the head of the log (clearing the reference bit,
//     CLOCK-style), and unreferenced live records are evicted;
//   - every salvage is a device write with no host write behind it, so
//     stats().write_amp() is a real write-amplification figure, not a
//     modeled constant.
//
// FlashTier is a pure state machine: read/write *latency* is modeled by
// the caller submitting ops to io::AioEngine; GC traffic is accounted
// here but deliberately costs no queue slots (devices garbage-collect in
// the background).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "cache/entry.h"
#include "io/aio.h"
#include "util/flat_hash.h"
#include "util/intern.h"
#include "util/types.h"

namespace catalyst::edge {

struct FlashConfig {
  /// Byte budget of the flash log. 0 (the default) means no flash tier
  /// anywhere: EdgePop behaves byte-identically to pre-flash builds.
  ByteCount capacity = 0;

  /// GC reclaim granularity. Clamped so the log always holds at least
  /// four segments (a one-segment log could never reclaim).
  ByteCount segment = MiB(2);

  /// Async-I/O device model (queue depth + service latencies).
  io::AioDeviceConfig device;

  /// Seed of the per-PoP latency-jitter stream (forked by pop id).
  std::uint64_t seed = 2024;

  bool enabled() const { return capacity > 0; }
};

struct FlashStats {
  std::uint64_t stores = 0;       // records appended on behalf of a host write
  std::uint64_t superseded = 0;   // records invalidated by a newer store
  std::uint64_t evictions = 0;    // live records dropped by GC
  std::uint64_t gc_segments = 0;  // segments reclaimed
  std::uint64_t gc_rewrites = 0;  // live records salvaged by GC
  ByteCount host_bytes_written = 0;    // bytes the cache asked to write
  ByteCount device_bytes_written = 0;  // bytes the device actually wrote

  /// Device writes per host write — the endurance figure flash caches
  /// optimize. 1.0 until GC first salvages something.
  double write_amp() const {
    return host_bytes_written == 0
               ? 1.0
               : static_cast<double>(device_bytes_written) /
                     static_cast<double>(host_bytes_written);
  }
};

class FlashTier {
 public:
  explicit FlashTier(const FlashConfig& config);

  /// Appends (or supersedes) a record. Returns false when the entry
  /// alone exceeds capacity. May reclaim segments to stay in budget.
  bool put(const std::string& key, cache::CacheEntry entry);

  /// Lookup that sets the record's reference bit (GC salvages referenced
  /// records). The pointer is invalidated by any subsequent mutation.
  cache::CacheEntry* get(const std::string& key);

  /// Lookup without touching the reference bit.
  const cache::CacheEntry* peek(const std::string& key) const;

  bool contains(const std::string& key) const {
    const InternId id = tls_intern().find(key);
    return id != kNoIntern && index_.find(id) != nullptr;
  }

  /// Marks the record dead (log caches never erase in place); space is
  /// reclaimed when its segment is. Returns false when absent.
  bool erase(const std::string& key);

  ByteCount live_bytes() const { return live_bytes_; }
  ByteCount log_bytes() const { return log_bytes_; }
  ByteCount capacity() const { return config_.capacity; }
  std::size_t entry_count() const { return index_.size(); }
  const FlashStats& stats() const { return stats_; }

 private:
  struct Record {
    std::string key;
    cache::CacheEntry entry;
    ByteCount cost = 0;
    bool live = false;
    bool referenced = false;
  };

  struct Segment {
    std::uint64_t seq = 0;  // monotonically increasing segment id
    std::vector<Record> records;
    ByteCount bytes = 0;  // log bytes including dead records
  };

  struct Location {
    std::uint64_t segment_seq = 0;
    std::uint32_t record = 0;
  };

  Record* locate(InternId key_id);
  const Record* locate(InternId key_id) const;
  void append(Record record, bool host_write);
  Segment& open_segment();
  void reclaim_oldest();

  FlashConfig config_;
  FlashStats stats_;
  ByteCount live_bytes_ = 0;  // bytes of live records
  ByteCount log_bytes_ = 0;   // bytes on the log (live + dead)
  std::uint64_t next_seq_ = 0;
  std::deque<Segment> segments_;  // front = oldest, back = open
  FlatHashMap<InternId, Location> index_;
};

}  // namespace catalyst::edge
