// One edge point of presence: the shared, capacity-bounded cache state a
// whole population of users behind the same PoP sees.
//
// An EdgePop is pure state + policy — SLRU storage, TinyLFU admission,
// RFC 9111 shared-cache semantics (no-store and private are refused,
// stale entries revalidate upstream), and Catalyst-awareness: base HTML
// is cached together with its X-Etag-Config map, and an origin 304
// refreshes the stored map so revisits can be answered entirely from the
// edge. It holds no network references, so it outlives the per-user
// testbeds that attach to it (see EdgeNode) and accumulates cache state
// across every user mapped to the PoP.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "cache/entry.h"
#include "cache/freshness.h"
#include "cache/stats.h"
#include "edge/flash.h"
#include "edge/slru.h"
#include "edge/tinylfu.h"
#include "util/rng.h"
#include "util/types.h"

namespace catalyst::edge {

struct EdgeConfig {
  int pop_id = 0;

  /// RAM-store byte budget of this PoP.
  ByteCount capacity = MiB(64);

  /// TinyLFU admission (off = plain SLRU fills, the ablation arm).
  bool tinylfu_admission = true;

  /// Protected-segment share of the SLRU store.
  double protected_fraction = 0.8;

  /// Modeled per-request edge compute (lookup + response assembly).
  Duration processing_delay = microseconds(300);

  /// Heuristic freshness for responses without explicit lifetimes
  /// (RFC 9111 §4.2.2 applies to shared caches too).
  bool allow_heuristic = true;

  /// Flash tier behind the RAM SLRU (capacity 0 — the default — means
  /// RAM-only, byte-identical to pre-flash builds). Admission is RAM
  /// eviction; reads are asynchronous through io::AioEngine.
  FlashConfig flash;

  /// Negative caching of origin 404/410s at the edge (off by default).
  cache::NegativePolicy negative;

  /// PLANTED VULNERABILITY for the security oracle (difftest
  /// `--mutate unkeyed-header`): when set, the edge cache key ignores
  /// unkeyed request inputs (X-Forwarded-Host), so a response the origin
  /// derived from one client's header is served to every client. Strict
  /// keying — the default — partitions the cache by that input.
  bool vulnerable_keying = false;
};

/// Fleet-level description of an edge tier: how many PoPs front the
/// origins and how each is provisioned. pops == 0 (the default) means no
/// edge tier anywhere — topologies, replays and reports are untouched.
struct EdgeTierParams {
  int pops = 0;
  ByteCount capacity = MiB(64);
  Duration origin_rtt = milliseconds(30);
  bool admission = true;  // TinyLFU on/off (ablation)

  /// Per-PoP flash tier (0 = RAM-only PoPs, pre-flash byte-identical).
  ByteCount flash_capacity = 0;
  Duration flash_read_latency = microseconds(100);
  int flash_queue_depth = 8;

  /// Negative caching at every PoP (see cache::NegativePolicy).
  cache::NegativePolicy negative;

  /// Vulnerable (unkeyed-input) cache keying — the planted poisoning bug.
  bool vulnerable_keying = false;

  bool enabled() const { return pops > 0; }
  bool flash_enabled() const { return enabled() && flash_capacity > 0; }
};

/// CacheStats core plus the decisions only a shared intermediary makes.
/// Every request resolves as exactly one of hits / flash_hits /
/// revalidated_hits / misses, so requests always equals their sum
/// (flash_hits is zero whenever the flash tier is disabled).
struct EdgePopStats : cache::CacheStats {
  std::uint64_t requests = 0;           // client requests handled
  std::uint64_t revalidated_hits = 0;   // served after an origin 304
  std::uint64_t coalesced = 0;          // requests that joined an in-flight fill
  std::uint64_t origin_fetches = 0;     // upstream fetches launched
  std::uint64_t origin_not_modified = 0;
  std::uint64_t origin_errors = 0;      // upstream exchanges that failed
  std::uint64_t admission_rejects = 0;  // TinyLFU refused a fill
  ByteCount bytes_from_origin = 0;      // upstream response bytes

  // Negative caching (zero when EdgeConfig::negative is disabled).
  std::uint64_t negative_stores = 0;  // 404/410 bodies admitted
  std::uint64_t negative_hits = 0;    // errors answered without the origin

  // Adversarial traffic observed (zero without `fleetsim --adversary`).
  std::uint64_t adversary_requests = 0;  // poisoning strikes handled
  std::uint64_t adversary_probes = 0;    // timing probes handled
  std::uint64_t adversary_probe_hits = 0;  // probes that read a hit

  // Flash tier (all zero when EdgeConfig::flash is disabled).
  std::uint64_t flash_hits = 0;        // served fresh from flash bytes
  std::uint64_t flash_coalesced = 0;   // joined an in-flight flash read
  std::uint64_t flash_demotions = 0;   // RAM evictions handed to flash
  std::uint64_t flash_promotions = 0;  // flash reads re-admitted to RAM
  std::uint64_t flash_promotion_rejects = 0;  // TinyLFU kept it in flash
  std::uint64_t flash_stores = 0;      // flash records written
  std::uint64_t flash_evictions = 0;   // records GC dropped
  std::uint64_t flash_gc_rewrites = 0; // records GC salvaged (write amp)
  ByteCount flash_bytes_served = 0;    // wire bytes answered from flash
  ByteCount flash_host_bytes = 0;      // host bytes written to flash
  ByteCount flash_device_bytes = 0;    // device bytes written (incl. GC)
  io::AioStats aio;                    // device queue telemetry

  double flash_write_amp() const {
    return flash_host_bytes == 0
               ? 1.0
               : static_cast<double>(flash_device_bytes) /
                     static_cast<double>(flash_host_bytes);
  }

  /// Fraction of requests answered without fetching a body upstream —
  /// the origin-offload headline number.
  double origin_offload_pct() const {
    return requests == 0
               ? 0.0
               : 100.0 * static_cast<double>(requests - origin_fetches) /
                     static_cast<double>(requests);
  }
};

enum class EdgeLookupDecision {
  Miss,   // nothing stored / nothing validatable
  Fresh,  // serve stored bytes, zero origin cost
  Stale,  // stored + validator: conditional GET upstream
};

struct EdgeLookupResult {
  EdgeLookupDecision decision = EdgeLookupDecision::Miss;
  /// Stored entry for Fresh/Stale; owned by the pop, invalidated by any
  /// subsequent mutation.
  cache::CacheEntry* entry = nullptr;
};

/// What an async flash read found once the device completed it. The
/// entry may have been superseded or GC-evicted while the op was queued,
/// so the completion re-classifies rather than trusting the submit-time
/// lookup.
enum class FlashReadOutcome {
  Gone,   // evicted/superseded while the read was in flight
  Fresh,  // serve flash bytes (promoted to RAM when TinyLFU agrees)
  Stale,  // validators present: conditional GET upstream
  Miss,   // stored but unvalidatable: treat as a plain miss
};

struct FlashReadResult {
  FlashReadOutcome outcome = FlashReadOutcome::Gone;
  /// Entry for Fresh/Stale. Fresh entries promoted to RAM point into the
  /// RAM store; everything else points into the flash log. Invalidated
  /// by any subsequent mutation of either tier.
  cache::CacheEntry* entry = nullptr;
};

class EdgePop {
 public:
  explicit EdgePop(EdgeConfig config);

  /// Host name this PoP registers on simulated networks: "edge.pop<id>".
  const std::string& host_name() const { return host_name_; }
  int pop_id() const { return config_.pop_id; }
  const EdgeConfig& config() const { return config_; }

  /// Classifies a stored entry for `key` at `now`. Entries stored "in the
  /// future" (user-major fleet replay runs users sequentially, so shared
  /// state can be ahead of the next user's clock) are treated as stale so
  /// they revalidate instead of serving content from the future.
  EdgeLookupResult lookup(const std::string& key, TimePoint now);

  /// Stores an origin 200 if shared-cache policy and TinyLFU admission
  /// allow. Returns true when stored. When the flash tier is enabled,
  /// RAM victims demote to flash instead of evaporating; `aio` (when
  /// given) accounts the resulting device writes.
  bool admit_and_store(const std::string& key, http::Response response,
                       TimePoint request_time, TimePoint response_time,
                       io::AioEngine* aio = nullptr);

  /// Applies an origin 304: refreshes validators, freshness headers, and
  /// — the Catalyst-aware part — the X-Etag-Config map, so edge-served
  /// revisits carry the origin's current subresource validity map.
  /// Returns the refreshed entry, or nullptr if nothing is stored.
  cache::CacheEntry* refresh_not_modified(const std::string& key,
                                          const http::Response& not_modified,
                                          TimePoint request_time,
                                          TimePoint response_time);

  // ---- Flash tier (all no-ops / false / null when flash is disabled) ----

  bool flash_enabled() const { return flash_ != nullptr; }
  FlashTier* flash() { return flash_.get(); }
  Rng& flash_rng() { return flash_rng_; }
  io::AioStats& aio_stats() { return aio_stats_; }

  /// True when `key` is absent from RAM but present in the flash log —
  /// the signal EdgeNode uses to start an async flash read on a RAM miss.
  bool flash_has(const std::string& key) const {
    return flash_ != nullptr && flash_->contains(key);
  }

  /// Wire size of the flash record for `key` (0 when absent) — the byte
  /// count the async read is charged for.
  ByteCount flash_entry_cost(const std::string& key) const;

  /// Re-classifies the flash record for `key` after its device read
  /// completed. Fresh records are promoted to RAM when TinyLFU agrees
  /// (demoting RAM victims back to flash via `aio`); unvalidatable stale
  /// records are dropped from both tiers and reported as Miss.
  FlashReadResult complete_flash_read(const std::string& key, TimePoint now,
                                      io::AioEngine* aio);

  void note_flash_hit(ByteCount bytes_served) {
    ++stats_.flash_hits;
    stats_.flash_bytes_served += bytes_served;
  }
  void note_flash_coalesced() { ++stats_.flash_coalesced; }

  // Telemetry notes — EdgeNode calls these at the semantically right
  // moments so `requests == hits + revalidated_hits + misses` holds.
  void note_request(const std::string& key);
  void note_hit(ByteCount bytes_served);
  void note_revalidated_hit(ByteCount bytes_served);
  void note_miss() { ++stats_.misses; }
  void note_coalesced() { ++stats_.coalesced; }
  void note_origin_fetch() { ++stats_.origin_fetches; }
  void note_origin_response(ByteCount bytes) {
    stats_.bytes_from_origin += bytes;
  }
  void note_origin_not_modified() { ++stats_.origin_not_modified; }
  void note_origin_error() { ++stats_.origin_errors; }
  void note_negative_hit() { ++stats_.negative_hits; }
  void note_adversary_request() { ++stats_.adversary_requests; }
  void note_adversary_probe(bool hit) {
    ++stats_.adversary_probes;
    if (hit) ++stats_.adversary_probe_hits;
  }

  /// Snapshot with the store's eviction count and — when the flash tier
  /// exists — the flash log's and device queue's counters folded in.
  EdgePopStats stats() const;

  SlruStore& store() { return store_; }
  const TinyLfuAdmission& admission() const { return admission_; }
  ByteCount size_bytes() const { return store_.size_bytes(); }
  std::size_t entry_count() const { return store_.entry_count(); }

 private:
  /// Shared freshness classification for stored entries in either tier:
  /// the future-fill guard, then the bounded negative lifetime for stored
  /// 404/410s, then RFC 9111 §4.2 for everything else.
  bool entry_is_fresh(const cache::CacheEntry& entry, TimePoint now) const;

  /// Hands a RAM eviction victim to the flash log (admission-by-demotion)
  /// and accounts the device write on `aio` when given.
  void demote_to_flash(const std::string& victim_key, io::AioEngine* aio);

  EdgeConfig config_;
  std::string host_name_;
  SlruStore store_;
  TinyLfuAdmission admission_;
  EdgePopStats stats_;

  /// Flash tier state. The tier, its latency-jitter RNG and the device
  /// queue telemetry live here (not in EdgeNode) so they persist across
  /// the per-user testbeds that bind to this PoP — mirroring how the
  /// SLRU accumulates state across users.
  std::unique_ptr<FlashTier> flash_;
  Rng flash_rng_;
  io::AioStats aio_stats_;
};

}  // namespace catalyst::edge
