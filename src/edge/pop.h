// One edge point of presence: the shared, capacity-bounded cache state a
// whole population of users behind the same PoP sees.
//
// An EdgePop is pure state + policy — SLRU storage, TinyLFU admission,
// RFC 9111 shared-cache semantics (no-store and private are refused,
// stale entries revalidate upstream), and Catalyst-awareness: base HTML
// is cached together with its X-Etag-Config map, and an origin 304
// refreshes the stored map so revisits can be answered entirely from the
// edge. It holds no network references, so it outlives the per-user
// testbeds that attach to it (see EdgeNode) and accumulates cache state
// across every user mapped to the PoP.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cache/entry.h"
#include "cache/stats.h"
#include "edge/slru.h"
#include "edge/tinylfu.h"
#include "util/types.h"

namespace catalyst::edge {

struct EdgeConfig {
  int pop_id = 0;

  /// Shared-store byte budget of this PoP.
  ByteCount capacity = MiB(64);

  /// TinyLFU admission (off = plain SLRU fills, the ablation arm).
  bool tinylfu_admission = true;

  /// Protected-segment share of the SLRU store.
  double protected_fraction = 0.8;

  /// Modeled per-request edge compute (lookup + response assembly).
  Duration processing_delay = microseconds(300);

  /// Heuristic freshness for responses without explicit lifetimes
  /// (RFC 9111 §4.2.2 applies to shared caches too).
  bool allow_heuristic = true;
};

/// Fleet-level description of an edge tier: how many PoPs front the
/// origins and how each is provisioned. pops == 0 (the default) means no
/// edge tier anywhere — topologies, replays and reports are untouched.
struct EdgeTierParams {
  int pops = 0;
  ByteCount capacity = MiB(64);
  Duration origin_rtt = milliseconds(30);
  bool admission = true;  // TinyLFU on/off (ablation)

  bool enabled() const { return pops > 0; }
};

/// CacheStats core plus the decisions only a shared intermediary makes.
/// Every request resolves as exactly one of hits / revalidated_hits /
/// misses, so requests always equals their sum.
struct EdgePopStats : cache::CacheStats {
  std::uint64_t requests = 0;           // client requests handled
  std::uint64_t revalidated_hits = 0;   // served after an origin 304
  std::uint64_t coalesced = 0;          // requests that joined an in-flight fill
  std::uint64_t origin_fetches = 0;     // upstream fetches launched
  std::uint64_t origin_not_modified = 0;
  std::uint64_t origin_errors = 0;      // upstream exchanges that failed
  std::uint64_t admission_rejects = 0;  // TinyLFU refused a fill
  ByteCount bytes_from_origin = 0;      // upstream response bytes

  /// Fraction of requests answered without fetching a body upstream —
  /// the origin-offload headline number.
  double origin_offload_pct() const {
    return requests == 0
               ? 0.0
               : 100.0 * static_cast<double>(requests - origin_fetches) /
                     static_cast<double>(requests);
  }
};

enum class EdgeLookupDecision {
  Miss,   // nothing stored / nothing validatable
  Fresh,  // serve stored bytes, zero origin cost
  Stale,  // stored + validator: conditional GET upstream
};

struct EdgeLookupResult {
  EdgeLookupDecision decision = EdgeLookupDecision::Miss;
  /// Stored entry for Fresh/Stale; owned by the pop, invalidated by any
  /// subsequent mutation.
  cache::CacheEntry* entry = nullptr;
};

class EdgePop {
 public:
  explicit EdgePop(EdgeConfig config);

  /// Host name this PoP registers on simulated networks: "edge.pop<id>".
  const std::string& host_name() const { return host_name_; }
  int pop_id() const { return config_.pop_id; }
  const EdgeConfig& config() const { return config_; }

  /// Classifies a stored entry for `key` at `now`. Entries stored "in the
  /// future" (user-major fleet replay runs users sequentially, so shared
  /// state can be ahead of the next user's clock) are treated as stale so
  /// they revalidate instead of serving content from the future.
  EdgeLookupResult lookup(const std::string& key, TimePoint now);

  /// Stores an origin 200 if shared-cache policy and TinyLFU admission
  /// allow. Returns true when stored.
  bool admit_and_store(const std::string& key, http::Response response,
                       TimePoint request_time, TimePoint response_time);

  /// Applies an origin 304: refreshes validators, freshness headers, and
  /// — the Catalyst-aware part — the X-Etag-Config map, so edge-served
  /// revisits carry the origin's current subresource validity map.
  /// Returns the refreshed entry, or nullptr if nothing is stored.
  cache::CacheEntry* refresh_not_modified(const std::string& key,
                                          const http::Response& not_modified,
                                          TimePoint request_time,
                                          TimePoint response_time);

  // Telemetry notes — EdgeNode calls these at the semantically right
  // moments so `requests == hits + revalidated_hits + misses` holds.
  void note_request(const std::string& key);
  void note_hit(ByteCount bytes_served);
  void note_revalidated_hit(ByteCount bytes_served);
  void note_miss() { ++stats_.misses; }
  void note_coalesced() { ++stats_.coalesced; }
  void note_origin_fetch() { ++stats_.origin_fetches; }
  void note_origin_response(ByteCount bytes) {
    stats_.bytes_from_origin += bytes;
  }
  void note_origin_not_modified() { ++stats_.origin_not_modified; }
  void note_origin_error() { ++stats_.origin_errors; }

  /// Snapshot with the store's eviction count folded in.
  EdgePopStats stats() const {
    EdgePopStats s = stats_;
    s.evictions = store_.evictions();
    return s;
  }

  SlruStore& store() { return store_; }
  const TinyLfuAdmission& admission() const { return admission_; }
  ByteCount size_bytes() const { return store_.size_bytes(); }
  std::size_t entry_count() const { return store_.entry_count(); }

 private:
  EdgeConfig config_;
  std::string host_name_;
  SlruStore store_;
  TinyLfuAdmission admission_;
  EdgePopStats stats_;
};

}  // namespace catalyst::edge
