// Segmented LRU (SLRU) — the eviction structure used by CDN caches and by
// the TinyLFU papers' reference design.
//
// Two cache::LruStore segments: entries enter *probation* and are promoted
// to *protected* on their first re-reference. Eviction victims come from
// probation's cold tail, so a one-touch scan can never flush entries that
// have proven reuse — the scan resistance plain LRU lacks. The protected
// segment is budgeted to a fraction of total capacity; overflow demotes
// its LRU entry back to probation (where it must re-earn promotion).
//
// Unlike LruStore, SlruStore never evicts on its own: callers make room
// explicitly (victim_key()/evict_victim()) so an admission policy can
// veto the insertion instead of the eviction happening behind its back.
#pragma once

#include <optional>
#include <string>

#include "cache/storage.h"

namespace catalyst::edge {

class SlruStore {
 public:
  /// `capacity` in bytes; `protected_fraction` of it is the promoted
  /// segment's budget (clamped to [0, 1]).
  explicit SlruStore(ByteCount capacity, double protected_fraction = 0.8);

  /// Lookup that refreshes recency and applies the SLRU promotion rule.
  /// The returned pointer is invalidated by any subsequent mutation.
  cache::CacheEntry* get(const std::string& key);

  /// Lookup without touching recency or segments.
  const cache::CacheEntry* peek(const std::string& key) const;

  /// Inserts (or replaces) into probation. Requires the caller to have
  /// made room: returns false when the entry alone exceeds capacity or
  /// when inserting would overflow the total budget.
  bool put(const std::string& key, cache::CacheEntry entry);

  bool erase(const std::string& key);

  /// Next eviction victim: probation's LRU tail, falling back to the
  /// protected tail when probation is empty. nullopt when empty.
  std::optional<std::string> victim_key() const;

  /// Evicts the current victim; returns false when empty.
  bool evict_victim();

  /// True when storing `incoming_cost` more bytes requires eviction.
  bool needs_room(ByteCount incoming_cost) const {
    return size_bytes() + incoming_cost > capacity_;
  }

  bool contains(const std::string& key) const {
    return peek(key) != nullptr;
  }
  ByteCount size_bytes() const {
    return probation_.size_bytes() + protected_.size_bytes();
  }
  ByteCount capacity() const { return capacity_; }
  std::size_t entry_count() const {
    return probation_.entry_count() + protected_.entry_count();
  }
  std::size_t evictions() const { return evictions_; }
  std::size_t promotions() const { return promotions_; }

  // Segment introspection (tests / telemetry).
  const cache::LruStore& probation() const { return probation_; }
  const cache::LruStore& protected_segment() const { return protected_; }

 private:
  void rebalance_protected();

  ByteCount capacity_;
  ByteCount protected_capacity_;
  std::size_t evictions_ = 0;
  std::size_t promotions_ = 0;
  // Both segments carry the full byte budget so they never auto-evict;
  // SlruStore enforces the real budgets itself (see header comment).
  cache::LruStore probation_;
  cache::LruStore protected_;
};

}  // namespace catalyst::edge
