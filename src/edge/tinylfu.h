// TinyLFU-style admission filtering for the shared edge tier.
//
// A capacity-bounded shared cache lives or dies by what it lets in: a
// single crawl of one-hit-wonder URLs can flush the working set of every
// user behind the PoP. TinyLFU (Einziger et al.) guards admission with an
// approximate frequency history: a candidate only displaces the eviction
// victim when it has been requested more often. We keep the classic
// two-part sketch — a Bloom-filter doorkeeper that absorbs the long tail
// of once-seen keys, backed by a small counting sketch for everything that
// comes back — and age the whole history periodically so yesterday's hot
// set cannot pin the cache forever.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/bloom.h"

namespace catalyst::edge {

/// Count-min sketch with saturating 8-bit counters and periodic halving.
/// Deterministic: counters depend only on the sequence of record() calls.
class FrequencySketch {
 public:
  /// `width` is rounded up to a power of two (per-row counter count).
  explicit FrequencySketch(std::size_t width);

  void record(std::string_view key);

  /// Approximate times `key` was recorded since the last halving epochs
  /// (min over rows — the usual count-min estimate).
  std::uint32_t estimate(std::string_view key) const;

  /// Halves every counter (TinyLFU's "reset" aging step).
  void age();

 private:
  static constexpr int kRows = 4;
  static constexpr std::uint8_t kCounterMax = 255;

  std::size_t index(std::string_view key, int row) const;

  std::size_t mask_;
  std::vector<std::uint8_t> counters_;  // kRows rows of (mask_+1) counters
};

struct TinyLfuStats {
  std::uint64_t recorded = 0;
  std::uint64_t doorkeeper_absorbed = 0;  // first-sighting keys
  std::uint64_t agings = 0;
};

/// The admission policy: record every request, and on cache pressure admit
/// the candidate only if its estimated frequency beats the victim's.
class TinyLfuAdmission {
 public:
  /// `expected_entries` sizes the doorkeeper and sketch; `sample_period`
  /// is how many recorded requests pass between aging steps (defaults to
  /// 8× the expected entry count, close to the paper's W = 8C).
  explicit TinyLfuAdmission(std::size_t expected_entries,
                            std::uint64_t sample_period = 0);

  /// Records one request for `key` (call on every edge request).
  void record(std::string_view key);

  /// Doorkeeper-adjusted frequency estimate.
  std::uint32_t frequency(std::string_view key) const;

  /// True when `candidate` should displace `victim`.
  bool admit(std::string_view candidate, std::string_view victim) const {
    return frequency(candidate) > frequency(victim);
  }

  const TinyLfuStats& stats() const { return stats_; }

 private:
  void reset_doorkeeper();

  std::size_t expected_entries_;
  std::uint64_t sample_period_;
  std::uint64_t events_in_epoch_ = 0;
  BloomFilter doorkeeper_;
  FrequencySketch sketch_;
  TinyLfuStats stats_;
};

}  // namespace catalyst::edge
