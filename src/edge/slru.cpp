#include "edge/slru.h"

#include <algorithm>

namespace catalyst::edge {

SlruStore::SlruStore(ByteCount capacity, double protected_fraction)
    : capacity_(capacity),
      protected_capacity_(static_cast<ByteCount>(
          static_cast<double>(capacity) *
          std::clamp(protected_fraction, 0.0, 1.0))),
      probation_(capacity),
      protected_(capacity) {}

cache::CacheEntry* SlruStore::get(const std::string& key) {
  if (cache::CacheEntry* entry = protected_.get(key)) return entry;
  const cache::CacheEntry* probed = probation_.peek(key);
  if (probed == nullptr) return nullptr;
  // First re-reference: promote. LruStore has no extract, so move via a
  // copy — entry bodies are site stand-in content, a one-time copy per
  // promotion is noise next to the simulated transfer it saves.
  cache::CacheEntry moved = *probed;
  probation_.erase(key);
  protected_.put(key, std::move(moved));
  ++promotions_;
  rebalance_protected();
  return protected_.get(key);
}

const cache::CacheEntry* SlruStore::peek(const std::string& key) const {
  if (const cache::CacheEntry* entry = protected_.peek(key)) return entry;
  return probation_.peek(key);
}

bool SlruStore::put(const std::string& key, cache::CacheEntry entry) {
  const ByteCount cost = entry.cost();
  if (cost > capacity_) return false;
  erase(key);
  if (needs_room(cost)) return false;  // caller must evict first
  return probation_.put(key, std::move(entry));
}

bool SlruStore::erase(const std::string& key) {
  return probation_.erase(key) || protected_.erase(key);
}

std::optional<std::string> SlruStore::victim_key() const {
  if (const auto key = probation_.lru_key()) return key;
  return protected_.lru_key();
}

bool SlruStore::evict_victim() {
  const auto key = victim_key();
  if (!key) return false;
  erase(*key);
  ++evictions_;
  return true;
}

void SlruStore::rebalance_protected() {
  // Demote the protected tail until the segment fits its budget. The
  // just-promoted entry sits at the MRU end, so it is only demoted when
  // it alone exceeds the budget — in which case it belongs in probation
  // anyway.
  while (protected_.size_bytes() > protected_capacity_ &&
         protected_.entry_count() > 1) {
    const auto tail = protected_.lru_key();
    if (!tail) break;
    cache::CacheEntry demoted = *protected_.peek(*tail);
    protected_.erase(*tail);
    probation_.put(*tail, std::move(demoted));
  }
}

}  // namespace catalyst::edge
