#include "edge/tinylfu.h"

#include <algorithm>

#include "util/hash.h"

namespace catalyst::edge {

namespace {

/// SplitMix64 finalizer — decorrelates the per-row indices derived from
/// one base hash (same mixing discipline as util/rng's seeding).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FrequencySketch::FrequencySketch(std::size_t width) {
  const std::size_t w = round_up_pow2(std::max<std::size_t>(width, 16));
  mask_ = w - 1;
  counters_.assign(static_cast<std::size_t>(kRows) * w, 0);
}

std::size_t FrequencySketch::index(std::string_view key, int row) const {
  const std::uint64_t base = fnv1a64(key);
  const std::uint64_t h = mix64(base + 0x9e3779b97f4a7c15ull *
                                           static_cast<std::uint64_t>(row + 1));
  return static_cast<std::size_t>(row) * (mask_ + 1) +
         static_cast<std::size_t>(h & mask_);
}

void FrequencySketch::record(std::string_view key) {
  for (int row = 0; row < kRows; ++row) {
    std::uint8_t& c = counters_[index(key, row)];
    if (c < kCounterMax) ++c;
  }
}

std::uint32_t FrequencySketch::estimate(std::string_view key) const {
  std::uint32_t est = kCounterMax;
  for (int row = 0; row < kRows; ++row) {
    est = std::min<std::uint32_t>(est, counters_[index(key, row)]);
  }
  return est;
}

void FrequencySketch::age() {
  for (std::uint8_t& c : counters_) c = static_cast<std::uint8_t>(c >> 1);
}

TinyLfuAdmission::TinyLfuAdmission(std::size_t expected_entries,
                                   std::uint64_t sample_period)
    : expected_entries_(std::max<std::size_t>(expected_entries, 16)),
      sample_period_(sample_period != 0
                         ? sample_period
                         : 8 * static_cast<std::uint64_t>(expected_entries_)),
      doorkeeper_(BloomFilter::for_entries(expected_entries_, 0.03)),
      sketch_(expected_entries_) {}

void TinyLfuAdmission::record(std::string_view key) {
  ++stats_.recorded;
  if (!doorkeeper_.may_contain(key)) {
    // First sighting (modulo false positives): the doorkeeper absorbs it
    // so the sketch only spends counters on keys that come back.
    doorkeeper_.insert(key);
    ++stats_.doorkeeper_absorbed;
  } else {
    sketch_.record(key);
  }
  if (++events_in_epoch_ >= sample_period_) {
    events_in_epoch_ = 0;
    ++stats_.agings;
    sketch_.age();
    reset_doorkeeper();
  }
}

std::uint32_t TinyLfuAdmission::frequency(std::string_view key) const {
  return sketch_.estimate(key) +
         (doorkeeper_.may_contain(key) ? 1u : 0u);
}

void TinyLfuAdmission::reset_doorkeeper() {
  doorkeeper_ = BloomFilter::for_entries(expected_entries_, 0.03);
}

}  // namespace catalyst::edge
