#include "edge/flash.h"

#include <utility>

namespace catalyst::edge {

FlashTier::FlashTier(const FlashConfig& config) : config_(config) {
  // A log that cannot hold four segments cannot garbage-collect without
  // thrashing; shrink the segment, never the budget.
  if (config_.segment * 4 > config_.capacity && config_.capacity > 0) {
    config_.segment = config_.capacity / 4;
  }
  if (config_.segment == 0) config_.segment = 1;
}

FlashTier::Record* FlashTier::locate(InternId key_id) {
  if (key_id == kNoIntern) return nullptr;
  Location* loc = index_.find(key_id);
  if (loc == nullptr) return nullptr;
  const std::uint64_t front_seq = segments_.front().seq;
  Segment& seg = segments_[loc->segment_seq - front_seq];
  return &seg.records[loc->record];
}

const FlashTier::Record* FlashTier::locate(InternId key_id) const {
  return const_cast<FlashTier*>(this)->locate(key_id);
}

bool FlashTier::put(const std::string& key, cache::CacheEntry entry) {
  const ByteCount cost = entry.cost();
  if (cost > config_.capacity) return false;

  const InternId key_id = tls_intern().intern(key);
  if (Record* old = locate(key_id)) {
    // Log caches never update in place: the old record goes dead where
    // it lies and its space comes back when its segment is reclaimed.
    old->live = false;
    live_bytes_ -= old->cost;
    ++stats_.superseded;
    index_.erase(key_id);
  }

  Record record;
  record.key = key;
  record.entry = std::move(entry);
  record.cost = cost;
  record.live = true;
  append(std::move(record), /*host_write=*/true);
  ++stats_.stores;

  while (log_bytes_ > config_.capacity && segments_.size() > 1) {
    reclaim_oldest();
  }
  return true;
}

cache::CacheEntry* FlashTier::get(const std::string& key) {
  Record* record = locate(tls_intern().find(key));
  if (record == nullptr) return nullptr;
  record->referenced = true;
  return &record->entry;
}

const cache::CacheEntry* FlashTier::peek(const std::string& key) const {
  const Record* record = locate(tls_intern().find(key));
  return record == nullptr ? nullptr : &record->entry;
}

bool FlashTier::erase(const std::string& key) {
  const InternId key_id = tls_intern().find(key);
  Record* record = locate(key_id);
  if (record == nullptr) return false;
  record->live = false;
  live_bytes_ -= record->cost;
  index_.erase(key_id);
  return true;
}

FlashTier::Segment& FlashTier::open_segment() {
  if (segments_.empty() || segments_.back().bytes >= config_.segment) {
    Segment seg;
    seg.seq = next_seq_++;
    segments_.push_back(std::move(seg));
  }
  return segments_.back();
}

void FlashTier::append(Record record, bool host_write) {
  const ByteCount cost = record.cost;
  const InternId key_id = tls_intern().intern(record.key);
  Segment& seg = open_segment();
  seg.records.push_back(std::move(record));
  seg.bytes += cost;
  log_bytes_ += cost;
  live_bytes_ += cost;
  index_.insert_or_assign(
      key_id, Location{seg.seq,
                       static_cast<std::uint32_t>(seg.records.size() - 1)});
  stats_.device_bytes_written += cost;
  if (host_write) stats_.host_bytes_written += cost;
}

void FlashTier::reclaim_oldest() {
  Segment victim = std::move(segments_.front());
  segments_.pop_front();
  log_bytes_ -= victim.bytes;
  ++stats_.gc_segments;
  for (Record& record : victim.records) {
    if (!record.live) continue;  // dead space reclaims for free
    live_bytes_ -= record.cost;
    index_.erase(tls_intern().find(record.key));
    if (record.referenced) {
      // CLOCK second chance: salvage to the log head, clearing the bit
      // so a second sweep without a reference evicts it. The rewrite is
      // a device write with no host write behind it — write amp.
      record.referenced = false;
      ++stats_.gc_rewrites;
      append(std::move(record), /*host_write=*/false);
    } else {
      ++stats_.evictions;
    }
  }
}

}  // namespace catalyst::edge
