// Per-testbed network binding of an EdgePop.
//
// Fleet replay builds a fresh Testbed (own event loop + network) per user,
// while PoP cache state must persist across every user behind the PoP. The
// split: EdgePop (pop.h) is the long-lived shared state; EdgeNode is the
// throwaway adapter that registers the PoP's host on one testbed network,
// terminates client requests there, and speaks HTTP/2 to the origin.
//
// The node implements the CDN data path:
//   - request coalescing: concurrent misses for one resource collapse to a
//     single origin fetch, every waiter is answered from the one fill;
//   - origin revalidation: stale-but-validatable entries cost a conditional
//     GET; an origin 304 refreshes stored metadata (including the Catalyst
//     X-Etag-Config map) and the stored bytes are served;
//   - per-waiter conditionals: a client revalidation that matches the
//     edge's entry gets a 304 straight from the edge.
//
// Origin pushes are deliberately dropped at the edge: intermediaries
// forwarding h2 server push is effectively nonexistent in deployed CDNs,
// which is part of why the paper's pull-based design matters.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "edge/pop.h"
#include "io/aio.h"
#include "netsim/network.h"
#include "netsim/transport.h"

namespace catalyst::edge {

class EdgeNode {
 public:
  /// Registers `pop.host_name()`'s request handler on `network`. The host
  /// must already exist, with RTTs configured to both client and origin.
  /// `origin_host` is the upstream this node fronts (one per testbed —
  /// the cache key carries it, so sites sharing a PoP never collide).
  EdgeNode(EdgePop& pop, netsim::Network& network, std::string origin_host);

  EdgeNode(const EdgeNode&) = delete;
  EdgeNode& operator=(const EdgeNode&) = delete;

  const std::string& origin_host() const { return origin_host_; }

 private:
  /// How a resolved request was answered — drives EdgePop accounting.
  /// hit = RAM bytes, no upstream exchange; flash hit = stored bytes after
  /// an async device read; revalidated = stored bytes after an upstream
  /// 304; miss = bytes fetched from origin this time.
  enum class Served { Hit, FlashHit, Revalidated, Miss };

  struct Waiter {
    http::Request request;
    std::function<void(netsim::ServerReply)> respond;
    TimePoint arrival{};  // when the request reached the PoP (obs phase)
  };

  /// One in-flight fetch — an origin exchange, or (flash_read) an async
  /// device read that may yet convert into one. Later requests for the
  /// same key join the waiter list instead of fetching again.
  struct Fill {
    std::vector<Waiter> waiters;
    TimePoint request_time{};
    bool retried = false;     // 304-for-evicted-entry refetch guard
    bool flash_read = false;  // waiting on the device, not the origin
  };

  /// Cache key for a client request: origin + path, partitioned by any
  /// unkeyed-but-reflected input (X-Forwarded-Host) under strict keying.
  /// With EdgeConfig::vulnerable_keying the partition is skipped — the
  /// planted poisoning bug the security oracle must catch.
  std::string cache_key(const http::Request& request) const;

  /// Builds the upstream request for a fill. Client conditionals never
  /// leak upstream, but X-Forwarded-Host does — the origin varies on it,
  /// which is what makes unkeyed caching of the result a poisoning bug.
  http::Request build_upstream(const http::Request& client) const;

  void handle(const http::Request& request,
              std::function<void(netsim::ServerReply)> respond);
  void on_flash_read(const std::string& key);
  void launch_fetch(const std::string& key, http::Request upstream);
  void on_origin_response(const std::string& key, http::Response response);
  void on_origin_error(const std::string& key);

  /// Answers one waiter from an authoritative response (stored entry or
  /// fresh origin fill): evaluates the waiter's own conditionals, then
  /// schedules the reply after the configured processing delay.
  void reply_to_waiter(const Waiter& waiter, const http::Response& source,
                       Served served);

  /// Lazily (re)built H2 connection to the origin. Broken connections move
  /// to the graveyard: their scheduled callbacks may still fire, so they
  /// must outlive the loop.
  netsim::Connection& origin_connection();

  EdgePop& pop_;
  netsim::Network& network_;
  std::string origin_host_;
  // Keyed by interned cache key; coalescing lookups happen per request.
  FlatHashMap<InternId, Fill> inflight_;
  /// Device queue for this testbed's flash reads/writes (null when the
  /// PoP has no flash tier). Per-node because completions schedule on
  /// this testbed's loop; the RNG and telemetry it drives live in the
  /// PoP so the latency stream persists across testbeds.
  std::unique_ptr<io::AioEngine> aio_;
  std::unique_ptr<netsim::Connection> origin_conn_;
  std::vector<std::unique_ptr<netsim::Connection>> graveyard_;
};

}  // namespace catalyst::edge
