// Subresource discovery from a parsed document — the heart of both the
// CacheCatalyst server module (which needs every same-origin link for the
// ETag map) and the browser's dependency resolution.
//
// JavaScript cannot be executed; like the paper (§3) we treat statically
// declared resources as the deterministic set, and model JS-driven fetches
// with an explicit directive convention (`@fetch <url>` in script text)
// that the workload generator emits and the browser "executes".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "html/dom.h"
#include "http/mime.h"

namespace catalyst::html {

struct DiscoveredResource {
  std::string url;  // as written in the document (may be relative)
  http::ResourceClass resource_class = http::ResourceClass::Other;

  /// Blocks HTML parsing (classic <script src> without async/defer) —
  /// later discoveries wait for it.
  bool parser_blocking = false;

  /// Render-blocking (stylesheets): onload waits, and script execution
  /// waits for pending stylesheets.
  bool render_blocking = false;

  bool operator==(const DiscoveredResource&) const = default;
};

/// Walks the document and returns subresources in document order:
/// stylesheets (<link rel=stylesheet>), scripts (<script src>), images
/// (<img src>, <source src/srcset first candidate>), fonts & other
/// preloads (<link rel=preload as=...>), plus url() references inside
/// <style> blocks. Anchors (<a href>) are navigation, not subresources.
std::vector<DiscoveredResource> extract_resources(const Node& document);

/// Scans script text for `@fetch <url>` directives — the simulation's
/// stand-in for fetches issued during JS execution.
std::vector<std::string> extract_js_fetches(std::string_view script_text);

}  // namespace catalyst::html
