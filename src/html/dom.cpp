#include "html/dom.h"

#include "util/strings.h"

namespace catalyst::html {

namespace {

bool is_void_element(std::string_view tag) {
  return tag == "area" || tag == "base" || tag == "br" || tag == "col" ||
         tag == "embed" || tag == "hr" || tag == "img" || tag == "input" ||
         tag == "link" || tag == "meta" || tag == "source" ||
         tag == "track" || tag == "wbr";
}

}  // namespace

std::unique_ptr<Node> Node::document() {
  return std::unique_ptr<Node>(new Node(Kind::Document, "#document", {}));
}

std::unique_ptr<Node> Node::element(std::string tag,
                                    std::vector<Attribute> attributes) {
  return std::unique_ptr<Node>(
      new Node(Kind::Element, std::move(tag), std::move(attributes)));
}

std::unique_ptr<Node> Node::text(std::string content) {
  return std::unique_ptr<Node>(new Node(Kind::Text, std::move(content), {}));
}

std::unique_ptr<Node> Node::comment(std::string content) {
  return std::unique_ptr<Node>(
      new Node(Kind::Comment, std::move(content), {}));
}

std::optional<std::string_view> Node::attr(std::string_view name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return std::string_view(a.value);
  }
  return std::nullopt;
}

void Node::append_child(std::unique_ptr<Node> child) {
  children_.push_back(std::move(child));
}

void Node::set_attr(std::string name, std::string value) {
  for (Attribute& a : attributes_) {
    if (a.name == name) {
      a.value = std::move(value);
      return;
    }
  }
  attributes_.push_back(Attribute{std::move(name), std::move(value)});
}

std::string Node::text_content() const {
  if (kind_ == Kind::Text) return data_;
  std::string out;
  for (const auto& child : children_) out += child->text_content();
  return out;
}

void Node::for_each_element(
    const std::function<void(const Node&)>& fn) const {
  if (kind_ == Kind::Element) fn(*this);
  for (const auto& child : children_) child->for_each_element(fn);
}

const Node* Node::find_first(std::string_view tag) const {
  if (is_element(tag)) return this;
  for (const auto& child : children_) {
    if (const Node* found = child->find_first(tag)) return found;
  }
  return nullptr;
}

std::string Node::to_html() const {
  switch (kind_) {
    case Kind::Text:
      return data_;
    case Kind::Comment:
      return "<!--" + data_ + "-->";
    case Kind::Document: {
      std::string out;
      for (const auto& child : children_) out += child->to_html();
      return out;
    }
    case Kind::Element: {
      std::string out = "<" + data_;
      for (const Attribute& a : attributes_) {
        out += " " + a.name;
        if (!a.value.empty()) out += "=\"" + a.value + "\"";
      }
      out += ">";
      if (is_void_element(data_)) return out;
      for (const auto& child : children_) out += child->to_html();
      out += "</" + data_ + ">";
      return out;
    }
  }
  return {};
}

}  // namespace catalyst::html
