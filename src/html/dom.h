// A small element tree — the "DOM" the CacheCatalyst server module
// traverses to collect subresource links (§3 of the paper: "it first
// traverses its entire DOM, extracts all resource links").
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "html/tokenizer.h"

namespace catalyst::html {

class Node {
 public:
  enum class Kind { Document, Element, Text, Comment };

  static std::unique_ptr<Node> document();
  static std::unique_ptr<Node> element(std::string tag,
                                       std::vector<Attribute> attributes);
  static std::unique_ptr<Node> text(std::string content);
  static std::unique_ptr<Node> comment(std::string content);

  Kind kind() const { return kind_; }
  /// Tag name (elements), or text/comment content.
  const std::string& data() const { return data_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }

  bool is_element(std::string_view tag) const {
    return kind_ == Kind::Element && data_ == tag;
  }

  /// Attribute value, if present (names are stored lowercased).
  std::optional<std::string_view> attr(std::string_view name) const;
  bool has_attr(std::string_view name) const {
    return attr(name).has_value();
  }

  void append_child(std::unique_ptr<Node> child);
  void set_attr(std::string name, std::string value);

  /// Concatenated text content of this subtree.
  std::string text_content() const;

  /// Depth-first visit of every element node in the subtree.
  void for_each_element(const std::function<void(const Node&)>& fn) const;

  /// First descendant element with the given tag, or nullptr.
  const Node* find_first(std::string_view tag) const;

  /// Serializes the subtree back to HTML text.
  std::string to_html() const;

 private:
  Node(Kind kind, std::string data, std::vector<Attribute> attributes)
      : kind_(kind), data_(std::move(data)),
        attributes_(std::move(attributes)) {}

  Kind kind_;
  std::string data_;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

}  // namespace catalyst::html
