// Tokenizer → DOM tree construction (simplified tree builder).
//
// Stack-based with void-element handling; mismatched end tags pop to the
// nearest matching open element (good enough for the well-formed-ish HTML
// that both the synthetic workload and real homepages produce).
#pragma once

#include <memory>
#include <string_view>

#include "html/dom.h"

namespace catalyst::html {

/// Parses HTML text into a document tree. Never fails: malformed input
/// degrades to a best-effort tree (like browsers, we do not reject pages).
std::unique_ptr<Node> parse(std::string_view input);

}  // namespace catalyst::html
