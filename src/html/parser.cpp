#include "html/parser.h"

#include <vector>

namespace catalyst::html {

namespace {

bool is_void_element(std::string_view tag) {
  return tag == "area" || tag == "base" || tag == "br" || tag == "col" ||
         tag == "embed" || tag == "hr" || tag == "img" || tag == "input" ||
         tag == "link" || tag == "meta" || tag == "source" ||
         tag == "track" || tag == "wbr";
}

}  // namespace

std::unique_ptr<Node> parse(std::string_view input) {
  auto doc = Node::document();
  std::vector<Node*> stack{doc.get()};

  Tokenizer tokenizer(input);
  while (true) {
    Token token = tokenizer.next();
    if (token.type == Token::Type::Eof) break;
    Node* parent = stack.back();
    switch (token.type) {
      case Token::Type::Text: {
        if (!token.data.empty()) {
          parent->append_child(Node::text(std::move(token.data)));
        }
        break;
      }
      case Token::Type::Comment:
        parent->append_child(Node::comment(std::move(token.data)));
        break;
      case Token::Type::Doctype:
        break;  // not represented in the tree
      case Token::Type::StartTag: {
        const bool leaf = token.self_closing || is_void_element(token.data);
        auto element =
            Node::element(token.data, std::move(token.attributes));
        Node* raw = element.get();
        parent->append_child(std::move(element));
        if (!leaf) stack.push_back(raw);
        break;
      }
      case Token::Type::EndTag: {
        // Pop to the nearest matching open element, if any.
        for (std::size_t i = stack.size(); i-- > 1;) {
          if (stack[i]->is_element(token.data)) {
            stack.resize(i);
            break;
          }
        }
        break;
      }
      case Token::Type::Eof:
        break;
    }
  }
  return doc;
}

}  // namespace catalyst::html
