// Synthetic content generation: real HTML/CSS/JS text with declared
// subresources.
//
// The workload layer synthesizes "top-100 homepage" clones with these
// builders; because the output is genuine markup, the same parsing code
// paths run on the server (ETag map construction) and in the browser
// (dependency discovery) as would run on real pages.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace catalyst::html {

/// Deterministic pseudo-prose filler of exactly `bytes` bytes (seeded so
/// content — and therefore ETags — are stable across runs).
std::string filler_text(ByteCount bytes, std::uint64_t seed);

/// Incremental HTML page builder.
class HtmlBuilder {
 public:
  explicit HtmlBuilder(std::string title);

  HtmlBuilder& add_stylesheet(std::string_view url);
  HtmlBuilder& add_script(std::string_view url, bool deferred = false);
  HtmlBuilder& add_preload(std::string_view url, std::string_view as_type);
  HtmlBuilder& add_inline_style(std::string_view css);
  HtmlBuilder& add_inline_script(std::string_view js);
  HtmlBuilder& add_image(std::string_view url, std::string_view alt = "");
  HtmlBuilder& add_paragraph(std::string_view text);
  HtmlBuilder& add_comment(std::string_view text);

  /// Pads the body with filler prose so the page reaches `total_bytes`
  /// (no-op if the page is already larger).
  HtmlBuilder& pad_to(ByteCount total_bytes, std::uint64_t seed);

  std::string build() const;

 private:
  std::string title_;
  std::string head_;
  std::string body_;
};

/// A stylesheet referencing the given asset URLs via url()/@import,
/// padded with plausible rule text to `total_bytes`.
std::string make_css(const std::vector<std::string>& image_urls,
                     const std::vector<std::string>& font_urls,
                     const std::vector<std::string>& imports,
                     ByteCount total_bytes, std::uint64_t seed);

/// A script that "fetches" the given URLs when executed (via the
/// `@fetch <url>` directive convention), padded to `total_bytes`.
std::string make_js(const std::vector<std::string>& fetch_urls,
                    ByteCount total_bytes, std::uint64_t seed);

}  // namespace catalyst::html
