#include "html/css.h"

#include "util/strings.h"

namespace catalyst::html {

namespace {

/// Returns the quoted or unquoted string starting at `pos`; advances pos
/// past it. Empty result on malformed input.
std::string read_css_string(std::string_view css, std::size_t& pos) {
  while (pos < css.size() && ascii_isspace(css[pos])) ++pos;
  if (pos >= css.size()) return {};
  std::string out;
  if (css[pos] == '"' || css[pos] == '\'') {
    const char quote = css[pos++];
    while (pos < css.size() && css[pos] != quote) out.push_back(css[pos++]);
    if (pos < css.size()) ++pos;
  } else {
    while (pos < css.size() && !ascii_isspace(css[pos]) && css[pos] != ')' &&
           css[pos] != ';') {
      out.push_back(css[pos++]);
    }
  }
  return out;
}

}  // namespace

std::vector<CssReference> extract_css_references(std::string_view css) {
  std::vector<CssReference> out;
  std::size_t pos = 0;
  while (pos < css.size()) {
    // Fast path: every construct we extract opens with '/', '@' or
    // 'u'/'U' ("/*", "@import", "url("); any other byte cannot start a
    // match, so skip it without running the prefix comparisons.
    const char c = css[pos];
    if (c != '/' && c != '@' && c != 'u' && c != 'U') {
      ++pos;
      continue;
    }
    // Skip comments.
    if (css.substr(pos, 2) == "/*") {
      const auto end = css.find("*/", pos + 2);
      pos = (end == std::string_view::npos) ? css.size() : end + 2;
      continue;
    }
    if (istarts_with(css.substr(pos), "@import")) {
      pos += 7;
      while (pos < css.size() && ascii_isspace(css[pos])) ++pos;
      std::string url;
      if (istarts_with(css.substr(pos), "url(")) {
        pos += 4;
        url = read_css_string(css, pos);
        if (pos < css.size() && css[pos] == ')') ++pos;
      } else {
        url = read_css_string(css, pos);
      }
      if (!url.empty() && !istarts_with(url, "data:")) {
        out.push_back(CssReference{std::move(url), /*is_import=*/true});
      }
      continue;
    }
    if (istarts_with(css.substr(pos), "url(")) {
      pos += 4;
      std::string url = read_css_string(css, pos);
      if (pos < css.size() && css[pos] == ')') ++pos;
      if (!url.empty() && !istarts_with(url, "data:")) {
        out.push_back(CssReference{std::move(url), /*is_import=*/false});
      }
      continue;
    }
    ++pos;
  }
  return out;
}

}  // namespace catalyst::html
