// CSS reference extraction: url(...) tokens and @import rules.
//
// The paper notes most resources "are deterministic and can be identified
// by parsing HTML and CSS files" — this is the CSS half. Both the server
// module (building the ETag map) and the browser (fetching fonts/images a
// stylesheet references) use it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace catalyst::html {

struct CssReference {
  std::string url;
  bool is_import = false;  // @import (another stylesheet) vs url() asset
};

/// Scans stylesheet text for @import and url() references. Comments are
/// skipped; quoted and unquoted url() forms are handled; data: URLs are
/// ignored (they embed content, nothing to fetch).
std::vector<CssReference> extract_css_references(std::string_view css);

}  // namespace catalyst::html
