// HTML tokenizer (pragmatic subset of the WHATWG tokenizer).
//
// The origin server's CacheCatalyst module and the browser emulator both
// parse real HTML text: the server to discover subresource links for the
// X-Etag-Config map, the browser to drive dependency resolution. The
// tokenizer handles start/end tags with attributes, comments, doctype,
// and raw-text elements (script/style) whose content must not be
// interpreted as markup.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace catalyst::html {

struct Attribute {
  std::string name;   // lowercased
  std::string value;  // entity decoding not applied (links rarely need it)

  bool operator==(const Attribute&) const = default;
};

struct Token {
  enum class Type { StartTag, EndTag, Text, Comment, Doctype, Eof };

  Type type = Type::Eof;
  std::string data;  // tag name (lowercased) or text/comment content
  std::vector<Attribute> attributes;  // StartTag only
  bool self_closing = false;          // StartTag only
};

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view input) : input_(input) {}

  /// Returns the next token; Type::Eof once input is exhausted.
  Token next();

  /// Convenience: tokenize everything (excluding the trailing Eof).
  static std::vector<Token> tokenize_all(std::string_view input);

 private:
  Token lex_tag();
  Token lex_comment();
  Token lex_doctype();
  Token lex_raw_text();
  void lex_attributes(Token& token);

  std::string_view input_;
  std::size_t pos_ = 0;
  std::string raw_text_end_tag_;  // non-empty while in raw-text mode
};

}  // namespace catalyst::html
