#include "html/tokenizer.h"

#include "util/strings.h"

namespace catalyst::html {

namespace {

bool is_raw_text_element(std::string_view tag) {
  return tag == "script" || tag == "style";
}

bool is_tag_name_char(char c) {
  return ascii_isalpha(c) || ascii_isdigit(c) || c == '-' || c == ':';
}

}  // namespace

Token Tokenizer::next() {
  if (!raw_text_end_tag_.empty()) return lex_raw_text();
  if (pos_ >= input_.size()) return Token{};

  if (input_[pos_] == '<') {
    if (input_.substr(pos_, 4) == "<!--") return lex_comment();
    if (input_.substr(pos_, 2) == "<!") return lex_doctype();
    if (pos_ + 1 < input_.size() &&
        (ascii_isalpha(input_[pos_ + 1]) || input_[pos_ + 1] == '/')) {
      return lex_tag();
    }
    // A stray '<' is text.
  }

  // Text until the next plausible tag opener.
  const std::size_t start = pos_;
  ++pos_;
  while (pos_ < input_.size()) {
    if (input_[pos_] == '<' && pos_ + 1 < input_.size() &&
        (ascii_isalpha(input_[pos_ + 1]) || input_[pos_ + 1] == '/' ||
         input_[pos_ + 1] == '!')) {
      break;
    }
    ++pos_;
  }
  Token token;
  token.type = Token::Type::Text;
  token.data = std::string(input_.substr(start, pos_ - start));
  return token;
}

Token Tokenizer::lex_tag() {
  Token token;
  ++pos_;  // consume '<'
  bool closing = false;
  if (pos_ < input_.size() && input_[pos_] == '/') {
    closing = true;
    ++pos_;
  }
  const std::size_t name_start = pos_;
  while (pos_ < input_.size() && is_tag_name_char(input_[pos_])) ++pos_;
  token.data = to_lower(input_.substr(name_start, pos_ - name_start));
  token.type = closing ? Token::Type::EndTag : Token::Type::StartTag;

  if (!closing) {
    lex_attributes(token);
  } else {
    // Skip anything up to '>'.
    while (pos_ < input_.size() && input_[pos_] != '>') ++pos_;
  }
  if (pos_ < input_.size() && input_[pos_] == '>') ++pos_;

  if (token.type == Token::Type::StartTag && !token.self_closing &&
      is_raw_text_element(token.data)) {
    raw_text_end_tag_ = token.data;
  }
  return token;
}

void Tokenizer::lex_attributes(Token& token) {
  while (pos_ < input_.size()) {
    while (pos_ < input_.size() && ascii_isspace(input_[pos_])) ++pos_;
    if (pos_ >= input_.size()) return;
    if (input_[pos_] == '>') return;
    if (input_[pos_] == '/') {
      // Possible self-closing marker.
      ++pos_;
      if (pos_ < input_.size() && input_[pos_] == '>') {
        token.self_closing = true;
        return;
      }
      continue;
    }
    // Attribute name.
    const std::size_t name_start = pos_;
    while (pos_ < input_.size() && input_[pos_] != '=' &&
           input_[pos_] != '>' && input_[pos_] != '/' &&
           !ascii_isspace(input_[pos_])) {
      ++pos_;
    }
    Attribute attr;
    attr.name = to_lower(input_.substr(name_start, pos_ - name_start));
    while (pos_ < input_.size() && ascii_isspace(input_[pos_])) ++pos_;
    if (pos_ < input_.size() && input_[pos_] == '=') {
      ++pos_;
      while (pos_ < input_.size() && ascii_isspace(input_[pos_])) ++pos_;
      if (pos_ < input_.size() &&
          (input_[pos_] == '"' || input_[pos_] == '\'')) {
        const char quote = input_[pos_++];
        const std::size_t value_start = pos_;
        while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
        attr.value = std::string(input_.substr(value_start,
                                               pos_ - value_start));
        if (pos_ < input_.size()) ++pos_;  // closing quote
      } else {
        const std::size_t value_start = pos_;
        while (pos_ < input_.size() && !ascii_isspace(input_[pos_]) &&
               input_[pos_] != '>') {
          ++pos_;
        }
        attr.value = std::string(input_.substr(value_start,
                                               pos_ - value_start));
      }
    }
    if (!attr.name.empty()) token.attributes.push_back(std::move(attr));
  }
}

Token Tokenizer::lex_comment() {
  pos_ += 4;  // "<!--"
  const std::size_t start = pos_;
  const auto end = input_.find("-->", pos_);
  Token token;
  token.type = Token::Type::Comment;
  if (end == std::string_view::npos) {
    token.data = std::string(input_.substr(start));
    pos_ = input_.size();
  } else {
    token.data = std::string(input_.substr(start, end - start));
    pos_ = end + 3;
  }
  return token;
}

Token Tokenizer::lex_doctype() {
  pos_ += 2;  // "<!"
  const std::size_t start = pos_;
  while (pos_ < input_.size() && input_[pos_] != '>') ++pos_;
  Token token;
  token.type = Token::Type::Doctype;
  token.data = std::string(input_.substr(start, pos_ - start));
  if (pos_ < input_.size()) ++pos_;
  return token;
}

Token Tokenizer::lex_raw_text() {
  // Scan for "</script" / "</style" case-insensitively. The terminator
  // always starts with a literal "</", so hop between '<' characters
  // (one find() per '<' in the raw text) instead of running a
  // case-insensitive compare at every byte position.
  const std::string& tag = raw_text_end_tag_;
  std::size_t found = std::string_view::npos;
  for (std::size_t search = pos_;
       (search = input_.find('<', search)) != std::string_view::npos;
       ++search) {
    if (search + 2 + tag.size() > input_.size()) break;
    if (input_[search + 1] != '/') continue;
    if (iequals(input_.substr(search + 2, tag.size()), tag)) {
      found = search;
      break;
    }
  }
  Token token;
  token.type = Token::Type::Text;
  if (found == std::string_view::npos) {
    token.data = std::string(input_.substr(pos_));
    pos_ = input_.size();
    raw_text_end_tag_.clear();
    return token;
  }
  token.data = std::string(input_.substr(pos_, found - pos_));
  pos_ = found;
  raw_text_end_tag_.clear();
  return token;  // the closing tag is lexed as the next token
}

std::vector<Token> Tokenizer::tokenize_all(std::string_view input) {
  Tokenizer tokenizer(input);
  std::vector<Token> out;
  while (true) {
    Token token = tokenizer.next();
    if (token.type == Token::Type::Eof) break;
    out.push_back(std::move(token));
  }
  return out;
}

}  // namespace catalyst::html
