#include "html/generate.h"

#include "util/rng.h"
#include "util/strings.h"

namespace catalyst::html {

namespace {

constexpr std::string_view kWords[] = {
    "network", "latency",  "cache",   "resource", "browser", "server",
    "request", "response", "page",    "load",     "token",   "etag",
    "bytes",   "transfer", "round",   "trip",     "origin",  "header",
    "content", "version",  "fresh",   "stale",    "fetch",   "worker",
};

}  // namespace

std::string filler_text(ByteCount bytes, std::uint64_t seed) {
  Rng rng(seed);
  std::string out;
  out.reserve(bytes + 16);
  while (out.size() < bytes) {
    const auto& word =
        kWords[static_cast<std::size_t>(rng.uniform_int(0, 23))];
    out.append(word);
    out.push_back(' ');
  }
  out.resize(bytes);
  return out;
}

HtmlBuilder::HtmlBuilder(std::string title) : title_(std::move(title)) {}

HtmlBuilder& HtmlBuilder::add_stylesheet(std::string_view url) {
  head_ += str_format("<link rel=\"stylesheet\" href=\"%.*s\">\n",
                      static_cast<int>(url.size()), url.data());
  return *this;
}

HtmlBuilder& HtmlBuilder::add_script(std::string_view url, bool deferred) {
  body_ += str_format("<script src=\"%.*s\"%s></script>\n",
                      static_cast<int>(url.size()), url.data(),
                      deferred ? " defer" : "");
  return *this;
}

HtmlBuilder& HtmlBuilder::add_preload(std::string_view url,
                                      std::string_view as_type) {
  head_ += str_format("<link rel=\"preload\" as=\"%.*s\" href=\"%.*s\">\n",
                      static_cast<int>(as_type.size()), as_type.data(),
                      static_cast<int>(url.size()), url.data());
  return *this;
}

HtmlBuilder& HtmlBuilder::add_inline_style(std::string_view css) {
  head_ += "<style>\n";
  head_ += css;
  head_ += "\n</style>\n";
  return *this;
}

HtmlBuilder& HtmlBuilder::add_inline_script(std::string_view js) {
  body_ += "<script>\n";
  body_ += js;
  body_ += "\n</script>\n";
  return *this;
}

HtmlBuilder& HtmlBuilder::add_image(std::string_view url,
                                    std::string_view alt) {
  body_ += str_format("<img src=\"%.*s\" alt=\"%.*s\">\n",
                      static_cast<int>(url.size()), url.data(),
                      static_cast<int>(alt.size()), alt.data());
  return *this;
}

HtmlBuilder& HtmlBuilder::add_paragraph(std::string_view text) {
  body_ += "<p>";
  body_ += text;
  body_ += "</p>\n";
  return *this;
}

HtmlBuilder& HtmlBuilder::add_comment(std::string_view text) {
  body_ += "<!-- ";
  body_ += text;
  body_ += " -->\n";
  return *this;
}

HtmlBuilder& HtmlBuilder::pad_to(ByteCount total_bytes, std::uint64_t seed) {
  const std::string current = build();
  if (current.size() >= total_bytes) return *this;
  const ByteCount missing = total_bytes - current.size() - 9;  // <p></p>\n…
  if (missing > 0 && missing < total_bytes) {
    add_paragraph(filler_text(missing, seed));
  }
  return *this;
}

std::string HtmlBuilder::build() const {
  std::string out = "<!DOCTYPE html>\n<html>\n<head>\n";
  out += "<title>" + title_ + "</title>\n";
  out += head_;
  out += "</head>\n<body>\n";
  out += body_;
  out += "</body>\n</html>\n";
  return out;
}

std::string make_css(const std::vector<std::string>& image_urls,
                     const std::vector<std::string>& font_urls,
                     const std::vector<std::string>& imports,
                     ByteCount total_bytes, std::uint64_t seed) {
  std::string out;
  for (const std::string& import_url : imports) {
    out += "@import url(\"" + import_url + "\");\n";
  }
  std::size_t i = 0;
  for (const std::string& font : font_urls) {
    out += str_format(
        "@font-face { font-family: f%zu; src: url(\"%s\"); }\n", i++,
        font.c_str());
  }
  i = 0;
  for (const std::string& img : image_urls) {
    out += str_format(".bg%zu { background-image: url(\"%s\"); }\n", i++,
                      img.c_str());
  }
  // Pad with generated rules.
  Rng rng(seed);
  while (out.size() < total_bytes) {
    out += str_format(".c%llu { margin: %lldpx; color: #%06llx; }\n",
                      static_cast<unsigned long long>(rng.next_u64() & 0xFFFF),
                      static_cast<long long>(rng.uniform_int(0, 64)),
                      static_cast<unsigned long long>(rng.next_u64() &
                                                      0xFFFFFF));
  }
  out.resize(total_bytes);
  return out;
}

std::string make_js(const std::vector<std::string>& fetch_urls,
                    ByteCount total_bytes, std::uint64_t seed) {
  std::string out = "\"use strict\";\n";
  for (const std::string& url : fetch_urls) {
    // The directive both documents intent and drives the simulation.
    out += "/* @fetch " + url + " */ fetch(\"" + url + "\");\n";
  }
  Rng rng(seed);
  while (out.size() < total_bytes) {
    out += str_format("function f%llu(x) { return x * %lld + %lld; }\n",
                      static_cast<unsigned long long>(rng.next_u64() &
                                                      0xFFFFF),
                      static_cast<long long>(rng.uniform_int(1, 97)),
                      static_cast<long long>(rng.uniform_int(0, 255)));
  }
  out.resize(total_bytes);
  return out;
}

}  // namespace catalyst::html
