#include "html/link_extract.h"

#include "html/css.h"
#include "util/strings.h"

namespace catalyst::html {

namespace {

http::ResourceClass preload_class(std::string_view as_value) {
  if (iequals(as_value, "style")) return http::ResourceClass::Css;
  if (iequals(as_value, "script")) return http::ResourceClass::Script;
  if (iequals(as_value, "image")) return http::ResourceClass::Image;
  if (iequals(as_value, "font")) return http::ResourceClass::Font;
  if (iequals(as_value, "fetch")) return http::ResourceClass::Json;
  return http::ResourceClass::Other;
}

void add(std::vector<DiscoveredResource>& out, std::string url,
         http::ResourceClass rc, bool parser_blocking,
         bool render_blocking) {
  if (url.empty() || istarts_with(url, "data:") ||
      istarts_with(url, "javascript:")) {
    return;
  }
  out.push_back(DiscoveredResource{std::move(url), rc, parser_blocking,
                                   render_blocking});
}

}  // namespace

std::vector<DiscoveredResource> extract_resources(const Node& document) {
  std::vector<DiscoveredResource> out;
  document.for_each_element([&out](const Node& el) {
    const std::string& tag = el.data();
    if (tag == "link") {
      const auto rel = el.attr("rel");
      const auto href = el.attr("href");
      if (!rel || !href) return;
      if (iequals(*rel, "stylesheet")) {
        add(out, std::string(*href), http::ResourceClass::Css,
            /*parser_blocking=*/false, /*render_blocking=*/true);
      } else if (iequals(*rel, "preload")) {
        const auto as_value = el.attr("as").value_or("");
        const auto rc = preload_class(as_value);
        add(out, std::string(*href), rc, false,
            rc == http::ResourceClass::Css);
      } else if (iequals(*rel, "icon") ||
                 iequals(*rel, "shortcut icon")) {
        add(out, std::string(*href), http::ResourceClass::Image, false,
            false);
      }
    } else if (tag == "script") {
      if (const auto src = el.attr("src")) {
        const bool deferred =
            el.has_attr("async") || el.has_attr("defer") ||
            iequals(el.attr("type").value_or(""), "module");
        add(out, std::string(*src), http::ResourceClass::Script,
            /*parser_blocking=*/!deferred, /*render_blocking=*/false);
      }
    } else if (tag == "img") {
      if (const auto src = el.attr("src")) {
        add(out, std::string(*src), http::ResourceClass::Image, false,
            false);
      }
    } else if (tag == "source") {
      if (const auto src = el.attr("src")) {
        add(out, std::string(*src), http::ResourceClass::Image, false,
            false);
      } else if (const auto srcset = el.attr("srcset")) {
        // First candidate of the srcset.
        const auto comma = srcset->find(',');
        std::string_view first =
            comma == std::string_view::npos ? *srcset
                                            : srcset->substr(0, comma);
        first = trim(first);
        if (const auto space = first.find(' ');
            space != std::string_view::npos) {
          first = first.substr(0, space);
        }
        add(out, std::string(first), http::ResourceClass::Image, false,
            false);
      }
    } else if (tag == "style") {
      for (CssReference& ref :
           extract_css_references(el.text_content())) {
        add(out, std::move(ref.url),
            ref.is_import ? http::ResourceClass::Css
                          : http::ResourceClass::Image,
            false, ref.is_import);
      }
    }
  });
  return out;
}

std::vector<std::string> extract_js_fetches(std::string_view script_text) {
  std::vector<std::string> out;
  static constexpr std::string_view kDirective = "@fetch ";
  std::size_t pos = 0;
  while ((pos = script_text.find(kDirective, pos)) !=
         std::string_view::npos) {
    pos += kDirective.size();
    const std::size_t start = pos;
    while (pos < script_text.size() && !ascii_isspace(script_text[pos]) &&
           script_text[pos] != '*' && script_text[pos] != ';') {
      ++pos;
    }
    std::string url(script_text.substr(start, pos - start));
    if (!url.empty()) out.push_back(std::move(url));
  }
  return out;
}

}  // namespace catalyst::html
