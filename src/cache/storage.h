// Keyed LRU store with byte-cost accounting — the storage engine under
// both the browser HTTP cache and the Service Worker cache.
//
// Internally the store runs on interned keys: every URL key is mapped to
// a dense InternId (util/intern.h) once, the index is an open-addressing
// FlatHashMap<InternId, slot>, and entries live in a slab whose slots
// form an intrusive doubly-linked recency list. A get() is one string
// hash + one integer probe + four index writes; no tree walk, no list
// node allocation, no per-operation malloc once the slab is warm. The
// public API stays string-keyed, so callers and recency semantics are
// unchanged from the std::list + unordered_map implementation.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/entry.h"
#include "util/flat_hash.h"
#include "util/intern.h"
#include "util/types.h"

namespace catalyst::cache {

class LruStore {
 public:
  /// `capacity` in bytes; entries larger than the capacity are rejected.
  explicit LruStore(ByteCount capacity);

  /// Inserts or replaces; evicts least-recently-used entries to fit.
  /// Returns false (and stores nothing) when the entry alone exceeds
  /// capacity.
  bool put(const std::string& key, CacheEntry entry);

  /// Lookup that refreshes recency. nullptr when absent. The pointer is
  /// invalidated by any subsequent mutation of the store.
  CacheEntry* get(const std::string& key);

  /// Lookup without touching recency.
  const CacheEntry* peek(const std::string& key) const;

  bool erase(const std::string& key);
  void clear();

  /// Key of the least-recently-used entry (the next internal-eviction
  /// victim), or nullopt when empty. Lets layered stores (segmented LRU,
  /// admission filters) pick victims without paying keys_mru_order().
  std::optional<std::string> lru_key() const {
    if (tail_ == kNil) return std::nullopt;
    return tls_intern().str(nodes_[tail_].key);
  }

  std::size_t entry_count() const { return index_.size(); }
  ByteCount size_bytes() const { return size_bytes_; }
  ByteCount capacity() const { return capacity_; }
  std::size_t evictions() const { return evictions_; }

  /// Restore hook for parked-state revival (fleet/parked): a revived
  /// store starts empty, so its eviction counter must be seeded with the
  /// count folded into the parked snapshot for stats() to keep reading
  /// the same totals the live store reported.
  void set_evictions(std::size_t n) { evictions_ = n; }

  /// Keys in most-recently-used order (for inspection/tests).
  std::vector<std::string> keys_mru_order() const;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    CacheEntry entry;
    ByteCount cost = 0;
    InternId key = kNoIntern;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  void unlink(std::uint32_t slot);
  void link_front(std::uint32_t slot);
  void release(std::uint32_t slot);
  void evict_to_fit(ByteCount incoming_cost);

  ByteCount capacity_;
  ByteCount size_bytes_ = 0;
  std::size_t evictions_ = 0;
  std::vector<Node> nodes_;           // slab; slots recycled via free_
  std::vector<std::uint32_t> free_;
  std::uint32_t head_ = kNil;  // most recently used
  std::uint32_t tail_ = kNil;  // least recently used
  FlatHashMap<InternId, std::uint32_t> index_;
};

}  // namespace catalyst::cache
