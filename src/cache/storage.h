// Keyed LRU store with byte-cost accounting — the storage engine under
// both the browser HTTP cache and the Service Worker cache.
#pragma once

#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cache/entry.h"
#include "util/types.h"

namespace catalyst::cache {

class LruStore {
 public:
  /// `capacity` in bytes; entries larger than the capacity are rejected.
  explicit LruStore(ByteCount capacity);

  /// Inserts or replaces; evicts least-recently-used entries to fit.
  /// Returns false (and stores nothing) when the entry alone exceeds
  /// capacity.
  bool put(const std::string& key, CacheEntry entry);

  /// Lookup that refreshes recency. nullptr when absent. The pointer is
  /// invalidated by any subsequent mutation of the store.
  CacheEntry* get(const std::string& key);

  /// Lookup without touching recency.
  const CacheEntry* peek(const std::string& key) const;

  bool erase(const std::string& key);
  void clear();

  /// Key of the least-recently-used entry (the next internal-eviction
  /// victim), or nullopt when empty. Lets layered stores (segmented LRU,
  /// admission filters) pick victims without paying keys_mru_order().
  std::optional<std::string> lru_key() const {
    if (lru_.empty()) return std::nullopt;
    return lru_.back().key;
  }

  std::size_t entry_count() const { return index_.size(); }
  ByteCount size_bytes() const { return size_bytes_; }
  ByteCount capacity() const { return capacity_; }
  std::size_t evictions() const { return evictions_; }

  /// Keys in most-recently-used order (for inspection/tests).
  std::vector<std::string> keys_mru_order() const;

 private:
  struct Item {
    std::string key;
    CacheEntry entry;
    ByteCount cost;
  };

  void evict_to_fit(ByteCount incoming_cost);

  ByteCount capacity_;
  ByteCount size_bytes_ = 0;
  std::size_t evictions_ = 0;
  std::list<Item> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Item>::iterator> index_;
};

}  // namespace catalyst::cache
