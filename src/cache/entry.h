// A stored HTTP response plus the metadata RFC 9111 needs to age it.
#pragma once

#include <optional>

#include "http/message.h"
#include "util/types.h"

namespace catalyst::cache {

struct CacheEntry {
  http::Response response;
  TimePoint request_time{};   // when the request was initiated
  TimePoint response_time{};  // when the response arrived

  /// Body checksum taken at store time (SW cache only); a mismatch at
  /// match time means the stored bytes rotted and must not be served.
  std::uint64_t body_digest = 0;

  /// Storage cost: response wire size plus a small bookkeeping overhead.
  ByteCount cost() const { return response.wire_size() + 64; }

  std::optional<http::Etag> etag() const { return response.etag(); }
};

}  // namespace catalyst::cache
