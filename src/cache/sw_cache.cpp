#include "cache/sw_cache.h"

namespace catalyst::cache {

bool SwCache::put(const std::string& url, http::Response response) {
  if (response.cache_control().no_store) {
    ++stats_.rejected_no_store;
    return false;
  }
  if (!response.etag()) return false;
  CacheEntry entry;
  entry.response = std::move(response);
  if (store_.put(url, std::move(entry))) {
    ++stats_.stores;
    return true;
  }
  return false;
}

const http::Response* SwCache::match(const std::string& url,
                                     const http::Etag& expected_etag) {
  CacheEntry* entry = store_.get(url);
  if (entry == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  const auto stored = entry->etag();
  if (stored && stored->weak_equals(expected_etag)) {
    ++stats_.hits;
    return &entry->response;
  }
  ++stats_.etag_mismatches;
  return nullptr;
}

std::optional<http::Etag> SwCache::stored_etag(const std::string& url) const {
  const CacheEntry* entry = store_.peek(url);
  if (entry == nullptr) return std::nullopt;
  return entry->etag();
}

}  // namespace catalyst::cache
