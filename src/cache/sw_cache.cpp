#include "cache/sw_cache.h"

#include "util/hash.h"

namespace catalyst::cache {

bool SwCache::put(const std::string& url, http::Response response) {
  if (response.cache_control().no_store) {
    ++stats_.rejected_no_store;
    return false;
  }
  if (!response.etag()) return false;
  CacheEntry entry;
  entry.body_digest = response.body_digest();
  entry.response = std::move(response);
  if (store_.put(url, std::move(entry))) {
    ++stats_.stores;
    return true;
  }
  return false;
}

const http::Response* SwCache::match(const std::string& url,
                                     const http::Etag& expected_etag) {
  CacheEntry* entry = store_.get(url);
  if (entry == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  if (entry->body_digest != entry->response.body_digest()) {
    // The stored bytes rotted: evict, never serve. The caller falls back
    // to a conditional GET regardless of what the map says.
    ++stats_.integrity_failures;
    store_.erase(url);
    return nullptr;
  }
  const auto stored = entry->etag();
  if (stored && stored->weak_equals(expected_etag)) {
    ++stats_.hits;
    stats_.bytes_served += entry->response.wire_size();
    return &entry->response;
  }
  ++stats_.etag_mismatches;
  return nullptr;
}

void SwCache::corrupt(const std::string& url) {
  if (CacheEntry* entry = store_.get(url)) {
    entry->body_digest ^= 0x1ull;
  }
}

std::optional<http::Etag> SwCache::stored_etag(const std::string& url) const {
  const CacheEntry* entry = store_.peek(url);
  if (entry == nullptr) return std::nullopt;
  return entry->etag();
}

}  // namespace catalyst::cache
