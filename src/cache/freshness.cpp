#include "cache/freshness.h"

#include <algorithm>

#include "http/date.h"
#include "util/strings.h"

namespace catalyst::cache {

Duration freshness_lifetime(const http::Response& response,
                            bool allow_heuristic) {
  const http::CacheControl cc = response.cache_control();
  if (cc.no_cache || cc.no_store) return Duration::zero();
  if (cc.max_age) return *cc.max_age;

  const auto date_field = response.headers.get(http::kDate);
  const auto date = date_field ? http::parse_http_date(*date_field)
                               : std::nullopt;
  if (const auto expires_field = response.headers.get(http::kExpires)) {
    const auto expires = http::parse_http_date(*expires_field);
    // Malformed Expires (e.g. "0") means already expired (§5.3).
    if (!expires) return Duration::zero();
    if (!date) return Duration::zero();
    return std::max(Duration::zero(), *expires - *date);
  }
  if (allow_heuristic) {
    if (const auto lm_field = response.headers.get(http::kLastModified)) {
      const auto last_modified = http::parse_http_date(*lm_field);
      if (last_modified && date && *date > *last_modified) {
        const Duration lifetime = (*date - *last_modified) / 10;
        return std::min(lifetime, hours(24));
      }
    }
  }
  return Duration::zero();
}

Duration current_age(const CacheEntry& entry, TimePoint now) {
  Duration apparent_age = Duration::zero();
  if (const auto date_field = entry.response.headers.get(http::kDate)) {
    if (const auto date = http::parse_http_date(*date_field)) {
      apparent_age = std::max(Duration::zero(), entry.response_time - *date);
    }
  }
  // Age header (from an intermediate cache) would add here; the simulation
  // talks to origins directly, so resident time dominates.
  Duration age_value = Duration::zero();
  if (const auto age_field = entry.response.headers.get(http::kAge)) {
    std::uint64_t age_seconds = 0;
    if (parse_u64(*age_field, age_seconds)) {
      age_value = seconds(static_cast<std::int64_t>(age_seconds));
    }
  }
  const Duration corrected = std::max(apparent_age, age_value);
  const Duration resident = now - entry.response_time;
  return corrected + resident;
}

bool is_fresh(const CacheEntry& entry, TimePoint now,
              bool allow_heuristic) {
  return freshness_lifetime(entry.response, allow_heuristic) >
         current_age(entry, now);
}

Duration negative_freshness_lifetime(const http::Response& response,
                                     const NegativePolicy& policy) {
  const http::CacheControl cc = response.cache_control();
  if (cc.no_cache || cc.no_store) return Duration::zero();
  // Explicit freshness (max-age or Expires−Date) is honored but clamped:
  // an over-generous origin must not pin an error past the policy bound.
  const Duration explicit_lifetime =
      freshness_lifetime(response, /*allow_heuristic=*/false);
  if (explicit_lifetime > Duration::zero()) {
    return std::min(explicit_lifetime, policy.max_ttl);
  }
  return std::min(policy.default_ttl, policy.max_ttl);
}

bool is_negative_fresh(const CacheEntry& entry, TimePoint now,
                       const NegativePolicy& policy) {
  return negative_freshness_lifetime(entry.response, policy) >
         current_age(entry, now);
}

}  // namespace catalyst::cache
