// The browser's HTTP cache decision engine (RFC 9111) — the status-quo
// behaviour the paper measures against.
//
// For each needed resource the cache answers one of:
//   FreshHit          serve stored bytes, zero network cost (Fig. 1b a.css)
//   NeedsRevalidation stored but stale / no-cache: conditional GET, one
//                     RTT minimum (Fig. 1b b.js, d.jpg)
//   Miss              nothing stored: full fetch
#pragma once

#include <cstdint>
#include <string>

#include "cache/freshness.h"
#include "cache/stats.h"
#include "cache/storage.h"
#include "util/types.h"

namespace catalyst::cache {

enum class LookupDecision { Miss, FreshHit, NeedsRevalidation };

struct LookupResult {
  LookupDecision decision = LookupDecision::Miss;
  /// Stored entry for FreshHit / NeedsRevalidation; owned by the cache and
  /// invalidated by subsequent mutations.
  const CacheEntry* entry = nullptr;
};

/// CacheStats core (hits = fresh hits) plus the RFC 9111 decisions only
/// the browser cache makes.
struct HttpCacheStats : CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t revalidations = 0;  // stale-but-validatable lookups
  std::uint64_t negative_stores = 0;  // 404/410 bodies admitted
  std::uint64_t negative_hits = 0;    // errors answered without the origin
};

class HttpCache {
 public:
  /// `allow_heuristic` enables §4.2.2 heuristic freshness for responses
  /// with no explicit lifetime (browsers do this; it can serve stale
  /// content — one of the risks the paper's design avoids).
  explicit HttpCache(ByteCount capacity = MiB(256),
                     bool allow_heuristic = true,
                     NegativePolicy negative = NegativePolicy{});

  /// Looks up `url` at time `now` and classifies the required action.
  LookupResult lookup(const std::string& url, TimePoint now);

  /// Stores a response if policy allows (no-store and non-cacheable
  /// statuses are rejected). Returns true when stored.
  bool store(const std::string& url, http::Response response,
             TimePoint request_time, TimePoint response_time);

  /// Applies a 304 Not Modified: refreshes the stored entry's metadata
  /// (Cache-Control, Expires, Date, ETag) and timestamps (§4.3.4).
  /// Returns the refreshed entry, or nullptr if nothing was stored.
  const CacheEntry* apply_not_modified(const std::string& url,
                                       const http::Response& not_modified,
                                       TimePoint request_time,
                                       TimePoint response_time);

  bool contains(const std::string& url) const {
    return store_.peek(url) != nullptr;
  }
  const CacheEntry* peek(const std::string& url) const {
    return store_.peek(url);
  }
  void remove(const std::string& url) { store_.erase(url); }
  void clear() { store_.clear(); }

  /// Snapshot with the storage engine's eviction count folded in.
  HttpCacheStats stats() const {
    HttpCacheStats s = stats_;
    s.evictions = store_.evictions();
    return s;
  }
  std::size_t entry_count() const { return store_.entry_count(); }
  ByteCount size_bytes() const { return store_.size_bytes(); }

  /// All stored URLs (MRU first). Used to build cache digests.
  std::vector<std::string> stored_urls() const {
    return store_.keys_mru_order();
  }

  /// Parked-state revival (fleet/parked): raw insert bypassing storage
  /// policy and store-counting — the entry was admitted by the live cache
  /// before parking, so re-admission checks would double-count. Entries
  /// must be restored LRU-first so recency order survives the round trip.
  void restore_entry(const std::string& url, CacheEntry entry) {
    store_.put(url, std::move(entry));
  }

  /// Parked-state revival: seeds counters with a stats() snapshot taken
  /// at park time. The snapshot's folded eviction count goes back to the
  /// storage engine so stats() keeps folding it from there.
  void restore_stats(const HttpCacheStats& snapshot) {
    stats_ = snapshot;
    stats_.evictions = 0;
    store_.set_evictions(snapshot.evictions);
  }

 private:
  LruStore store_;
  bool allow_heuristic_;
  NegativePolicy negative_;
  HttpCacheStats stats_;
};

}  // namespace catalyst::cache
