#include "cache/storage.h"

namespace catalyst::cache {

LruStore::LruStore(ByteCount capacity) : capacity_(capacity) {}

void LruStore::unlink(std::uint32_t slot) {
  Node& node = nodes_[slot];
  if (node.prev != kNil) {
    nodes_[node.prev].next = node.next;
  } else {
    head_ = node.next;
  }
  if (node.next != kNil) {
    nodes_[node.next].prev = node.prev;
  } else {
    tail_ = node.prev;
  }
  node.prev = kNil;
  node.next = kNil;
}

void LruStore::link_front(std::uint32_t slot) {
  Node& node = nodes_[slot];
  node.prev = kNil;
  node.next = head_;
  if (head_ != kNil) nodes_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

void LruStore::release(std::uint32_t slot) {
  nodes_[slot].entry = CacheEntry{};  // drop body bytes now, not later
  nodes_[slot].key = kNoIntern;
  free_.push_back(slot);
}

bool LruStore::put(const std::string& key, CacheEntry entry) {
  const ByteCount cost = entry.cost();
  if (cost > capacity_) return false;
  const InternId id = tls_intern().intern(key);
  if (const std::uint32_t* slot = index_.find(id)) {
    size_bytes_ -= nodes_[*slot].cost;
    unlink(*slot);
    release(*slot);
    index_.erase(id);
  }
  evict_to_fit(cost);
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& node = nodes_[slot];
  node.entry = std::move(entry);
  node.cost = cost;
  node.key = id;
  link_front(slot);
  index_.insert_or_assign(id, slot);
  size_bytes_ += cost;
  return true;
}

CacheEntry* LruStore::get(const std::string& key) {
  const InternId id = tls_intern().find(key);
  if (id == kNoIntern) return nullptr;
  const std::uint32_t* slot = index_.find(id);
  if (slot == nullptr) return nullptr;
  if (*slot != head_) {  // move to front
    unlink(*slot);
    link_front(*slot);
  }
  return &nodes_[*slot].entry;
}

const CacheEntry* LruStore::peek(const std::string& key) const {
  const InternId id = tls_intern().find(key);
  if (id == kNoIntern) return nullptr;
  const std::uint32_t* slot = index_.find(id);
  return slot == nullptr ? nullptr : &nodes_[*slot].entry;
}

bool LruStore::erase(const std::string& key) {
  const InternId id = tls_intern().find(key);
  if (id == kNoIntern) return false;
  const std::uint32_t* slot = index_.find(id);
  if (slot == nullptr) return false;
  size_bytes_ -= nodes_[*slot].cost;
  unlink(*slot);
  release(*slot);
  index_.erase(id);
  return true;
}

void LruStore::clear() {
  nodes_.clear();
  free_.clear();
  index_.clear();
  head_ = kNil;
  tail_ = kNil;
  size_bytes_ = 0;
}

void LruStore::evict_to_fit(ByteCount incoming_cost) {
  while (tail_ != kNil && size_bytes_ + incoming_cost > capacity_) {
    const std::uint32_t victim = tail_;
    size_bytes_ -= nodes_[victim].cost;
    index_.erase(nodes_[victim].key);
    unlink(victim);
    release(victim);
    ++evictions_;
  }
}

std::vector<std::string> LruStore::keys_mru_order() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (std::uint32_t slot = head_; slot != kNil; slot = nodes_[slot].next) {
    out.push_back(tls_intern().str(nodes_[slot].key));
  }
  return out;
}

}  // namespace catalyst::cache
