#include "cache/storage.h"

namespace catalyst::cache {

LruStore::LruStore(ByteCount capacity) : capacity_(capacity) {}

bool LruStore::put(const std::string& key, CacheEntry entry) {
  const ByteCount cost = entry.cost();
  if (cost > capacity_) return false;
  erase(key);
  evict_to_fit(cost);
  lru_.push_front(Item{key, std::move(entry), cost});
  index_[key] = lru_.begin();
  size_bytes_ += cost;
  return true;
}

CacheEntry* LruStore::get(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return &it->second->entry;
}

const CacheEntry* LruStore::peek(const std::string& key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &it->second->entry;
}

bool LruStore::erase(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  size_bytes_ -= it->second->cost;
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void LruStore::clear() {
  lru_.clear();
  index_.clear();
  size_bytes_ = 0;
}

void LruStore::evict_to_fit(ByteCount incoming_cost) {
  while (!lru_.empty() && size_bytes_ + incoming_cost > capacity_) {
    const Item& victim = lru_.back();
    size_bytes_ -= victim.cost;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::vector<std::string> LruStore::keys_mru_order() const {
  std::vector<std::string> out;
  out.reserve(lru_.size());
  for (const Item& item : lru_) out.push_back(item.key);
  return out;
}

}  // namespace catalyst::cache
