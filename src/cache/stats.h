// Shared cache telemetry core.
//
// Every cache in the stack — the browser HTTP cache, the Service Worker
// cache, and the shared edge PoPs — answers the same four questions: how
// often it hit, how often it missed, what it stored, and what it threw
// away. CacheStats is that common core; each cache extends it with its
// own decision-specific counters instead of keeping an ad-hoc set.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace catalyst::cache {

struct CacheStats {
  std::uint64_t hits = 0;       // served from stored bytes
  std::uint64_t misses = 0;     // nothing usable stored
  std::uint64_t stores = 0;     // entries written
  std::uint64_t evictions = 0;  // entries removed to make room
  /// Stored responses that policy refused to cache (no-store, and for
  /// shared caches also private).
  std::uint64_t rejected_no_store = 0;
  /// Wire bytes answered from stored entries (full-body serves).
  ByteCount bytes_served = 0;

  void merge(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    stores += other.stores;
    evictions += other.evictions;
    rejected_no_store += other.rejected_no_store;
    bytes_served += other.bytes_served;
  }

  std::uint64_t lookups_resolved() const { return hits + misses; }

  bool operator==(const CacheStats&) const = default;
};

}  // namespace catalyst::cache
