// Freshness lifetime and age computation (RFC 9111 §4.2).
//
// The paper's critique lives here: a response is served from cache only
// while fresh; expired-but-unchanged responses force a re-validation RTT.
#pragma once

#include "cache/entry.h"
#include "util/types.h"

namespace catalyst::cache {

/// Freshness lifetime (RFC 9111 §4.2.1): Cache-Control max-age wins, then
/// Expires − Date. With `allow_heuristic`, responses lacking explicit
/// lifetimes get the 10%-of-Last-Modified-age heuristic (§4.2.2), capped
/// at one day (matching common browser practice). no-cache forces zero.
Duration freshness_lifetime(const http::Response& response,
                            bool allow_heuristic);

/// Current age (RFC 9111 §4.2.3), simplified for a single-hop private
/// cache: apparent age from the Date header plus resident time.
Duration current_age(const CacheEntry& entry, TimePoint now);

/// response_is_fresh = freshness_lifetime > current_age (§4.2).
bool is_fresh(const CacheEntry& entry, TimePoint now, bool allow_heuristic);

/// Negative caching policy (RFC 9111 §4 applied to error responses, after
/// Garg et al.): 404/410 responses are stored under a bounded TTL so dead
/// links stop costing an origin round-trip per reference. Off by default —
/// zero-config runs must stay byte-identical to pre-negative builds.
struct NegativePolicy {
  bool enabled = false;
  /// Lifetime granted to a negative response with no explicit freshness.
  Duration default_ttl = seconds(60);
  /// Upper bound on any negative lifetime, explicit or default: an origin
  /// misconfigured with `max-age=1y` on a 404 must not pin the error.
  Duration max_ttl = minutes(10);
};

/// True for statuses negative caching applies to (404, 410).
constexpr bool is_negative_status(http::Status s) {
  return s == http::Status::NotFound || s == http::Status::Gone;
}

/// Freshness lifetime for a negative response: explicit lifetime when the
/// origin sent one (clamped to `policy.max_ttl`), else the bounded default.
/// no-store / no-cache still force zero.
Duration negative_freshness_lifetime(const http::Response& response,
                                     const NegativePolicy& policy);

/// is_fresh with the negative lifetime rule substituted.
bool is_negative_fresh(const CacheEntry& entry, TimePoint now,
                       const NegativePolicy& policy);

}  // namespace catalyst::cache
