// Freshness lifetime and age computation (RFC 9111 §4.2).
//
// The paper's critique lives here: a response is served from cache only
// while fresh; expired-but-unchanged responses force a re-validation RTT.
#pragma once

#include "cache/entry.h"
#include "util/types.h"

namespace catalyst::cache {

/// Freshness lifetime (RFC 9111 §4.2.1): Cache-Control max-age wins, then
/// Expires − Date. With `allow_heuristic`, responses lacking explicit
/// lifetimes get the 10%-of-Last-Modified-age heuristic (§4.2.2), capped
/// at one day (matching common browser practice). no-cache forces zero.
Duration freshness_lifetime(const http::Response& response,
                            bool allow_heuristic);

/// Current age (RFC 9111 §4.2.3), simplified for a single-hop private
/// cache: apparent age from the Date header plus resident time.
Duration current_age(const CacheEntry& entry, TimePoint now);

/// response_is_fresh = freshness_lifetime > current_age (§4.2).
bool is_fresh(const CacheEntry& entry, TimePoint now, bool allow_heuristic);

}  // namespace catalyst::cache
