// The Service Worker's cache (paper §3): stores every non-no-store
// response keyed by URL together with its ETag, with **no TTL** — entries
// never expire on their own. Validity is decided per page load by
// comparing stored ETags against the fresh X-Etag-Config map, which is
// exactly what makes max-age tuning unnecessary under CacheCatalyst.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cache/stats.h"
#include "cache/storage.h"
#include "http/etag.h"

namespace catalyst::cache {

/// CacheStats core plus the map-comparison outcomes only the SW cache has.
struct SwCacheStats : CacheStats {
  std::uint64_t etag_mismatches = 0;
  /// Entries whose body no longer matched the digest taken at store time;
  /// they are evicted rather than served.
  std::uint64_t integrity_failures = 0;
};

class SwCache {
 public:
  explicit SwCache(ByteCount capacity = MiB(256)) : store_(capacity) {}

  /// Stores a response unless it carries no-store (the one header the
  /// paper's design still honors) or lacks an ETag (nothing to compare).
  /// Returns true when stored.
  bool put(const std::string& url, http::Response response);

  /// Returns the stored response iff its ETag weak-matches
  /// `expected_etag` (from the X-Etag-Config map). A mismatch means the
  /// resource changed on the origin: the entry is NOT returned and the
  /// caller must fetch.
  const http::Response* match(const std::string& url,
                              const http::Etag& expected_etag);

  /// Stored ETag for a URL, if any (used to decide revalidation fallbacks
  /// for resources missing from the map).
  std::optional<http::Etag> stored_etag(const std::string& url) const;

  /// Fault/test hook: invalidates the stored digest for `url` so the next
  /// match sees an integrity failure (simulated storage corruption).
  void corrupt(const std::string& url);

  bool contains(const std::string& url) const {
    return store_.peek(url) != nullptr;
  }
  const CacheEntry* peek(const std::string& url) const {
    return store_.peek(url);
  }
  void remove(const std::string& url) { store_.erase(url); }
  void clear() { store_.clear(); }

  /// All stored URLs (MRU first). Parked-state snapshots walk these.
  std::vector<std::string> stored_urls() const {
    return store_.keys_mru_order();
  }

  /// Parked-state revival (fleet/parked): raw insert bypassing the put()
  /// policy and store-counting. The caller restores the entry's explicit
  /// body_digest too — it may legitimately disagree with the body (a
  /// corrupt()-ed entry must stay corrupt across a park/revive cycle).
  void restore_entry(const std::string& url, CacheEntry entry) {
    store_.put(url, std::move(entry));
  }

  /// Parked-state revival: seeds counters with a stats() snapshot taken
  /// at park time (folded evictions go back to the storage engine).
  void restore_stats(const SwCacheStats& snapshot) {
    stats_ = snapshot;
    stats_.evictions = 0;
    store_.set_evictions(snapshot.evictions);
  }

  /// Snapshot with the storage engine's eviction count folded in.
  SwCacheStats stats() const {
    SwCacheStats s = stats_;
    s.evictions = store_.evictions();
    return s;
  }
  std::size_t entry_count() const { return store_.entry_count(); }
  ByteCount size_bytes() const { return store_.size_bytes(); }

 private:
  LruStore store_;
  SwCacheStats stats_;
};

}  // namespace catalyst::cache
