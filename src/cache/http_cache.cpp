#include "cache/http_cache.h"

#include "cache/freshness.h"
#include "util/strings.h"

namespace catalyst::cache {

HttpCache::HttpCache(ByteCount capacity, bool allow_heuristic,
                     NegativePolicy negative)
    : store_(capacity),
      allow_heuristic_(allow_heuristic),
      negative_(negative) {}

LookupResult HttpCache::lookup(const std::string& url, TimePoint now) {
  ++stats_.lookups;
  CacheEntry* entry = store_.get(url);
  if (entry == nullptr) {
    ++stats_.misses;
    return LookupResult{LookupDecision::Miss, nullptr};
  }
  // Negative entries (stored 404/410s) answer under the bounded negative
  // lifetime or not at all: once expired they are erased — revalidating an
  // error body is pointless, the next reference pays the origin again.
  if (is_negative_status(entry->response.status)) {
    if (negative_.enabled && is_negative_fresh(*entry, now, negative_)) {
      ++stats_.hits;
      ++stats_.negative_hits;
      stats_.bytes_served += entry->response.wire_size();
      return LookupResult{LookupDecision::FreshHit, entry};
    }
    store_.erase(url);
    ++stats_.misses;
    return LookupResult{LookupDecision::Miss, nullptr};
  }
  const http::CacheControl cc = entry->response.cache_control();
  if (!cc.must_revalidate && !cc.no_cache &&
      is_fresh(*entry, now, allow_heuristic_)) {
    ++stats_.hits;
    stats_.bytes_served += entry->response.wire_size();
    return LookupResult{LookupDecision::FreshHit, entry};
  }
  // Stale (or always-revalidate): usable only after validation — but only
  // if we hold a validator; otherwise it is as good as a miss.
  if (entry->etag() ||
      entry->response.headers.contains(http::kLastModified)) {
    ++stats_.revalidations;
    return LookupResult{LookupDecision::NeedsRevalidation, entry};
  }
  ++stats_.misses;
  return LookupResult{LookupDecision::Miss, nullptr};
}

bool HttpCache::store(const std::string& url, http::Response response,
                      TimePoint request_time, TimePoint response_time) {
  const http::CacheControl cc = response.cache_control();
  if (cc.no_store) {
    ++stats_.rejected_no_store;
    return false;
  }
  if (!http::is_cacheable_status(response.status)) return false;
  const bool negative = is_negative_status(response.status);
  if (negative && (!negative_.enabled || cc.no_cache)) return false;
  // A response with no freshness info and no validator can never be
  // reused; storing it would only waste space. Negative responses are
  // exempt: the policy's bounded default TTL is their freshness info.
  if (!negative && !cc.max_age && !cc.no_cache &&
      !response.headers.contains(http::kExpires) &&
      !response.headers.contains(http::kEtagHeader) &&
      !response.headers.contains(http::kLastModified)) {
    return false;
  }
  CacheEntry entry;
  entry.response = std::move(response);
  entry.request_time = request_time;
  entry.response_time = response_time;
  if (store_.put(url, std::move(entry))) {
    ++stats_.stores;
    if (negative) ++stats_.negative_stores;
    return true;
  }
  return false;
}

const CacheEntry* HttpCache::apply_not_modified(
    const std::string& url, const http::Response& not_modified,
    TimePoint request_time, TimePoint response_time) {
  CacheEntry* entry = store_.get(url);
  if (entry == nullptr) return nullptr;
  // Refresh stored metadata from the 304 (RFC 9111 §4.3.4): validators and
  // freshness-related headers.
  for (const auto& field : not_modified.headers.fields()) {
    if (iequals(field.name, http::kEtagHeader) ||
        iequals(field.name, http::kCacheControl) ||
        iequals(field.name, http::kExpires) ||
        iequals(field.name, http::kDate) ||
        iequals(field.name, http::kLastModified)) {
      entry->response.headers.set(field.name, field.value);
    }
  }
  entry->request_time = request_time;
  entry->response_time = response_time;
  return entry;
}

}  // namespace catalyst::cache
