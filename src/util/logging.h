// Leveled logging for the simulator.
//
// Logging defaults to Warn so tests and benches stay quiet; examples turn on
// Info/Debug to show waterfall-style traces. Output goes to stderr so bench
// tables on stdout stay machine-readable.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace catalyst {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one log line (adds level prefix and newline).
void log_message(LogLevel level, std::string_view component,
                 std::string_view message);

/// Stream-style helper: Logger("netsim").info() << "flow done";
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  class Line {
   public:
    Line(LogLevel level, std::string_view component)
        : level_(level), component_(component) {}
    Line(const Line&) = delete;
    Line& operator=(const Line&) = delete;
    ~Line() {
      if (level_ >= log_level()) log_message(level_, component_, out_.str());
    }

    template <typename T>
    Line& operator<<(const T& value) {
      if (level_ >= log_level()) out_ << value;
      return *this;
    }

   private:
    LogLevel level_;
    std::string_view component_;
    std::ostringstream out_;
  };

  Line debug() const { return Line(LogLevel::Debug, component_); }
  Line info() const { return Line(LogLevel::Info, component_); }
  Line warn() const { return Line(LogLevel::Warn, component_); }
  Line error() const { return Line(LogLevel::Error, component_); }

 private:
  std::string component_;
};

}  // namespace catalyst
