#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/strings.h"

namespace catalyst {

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = b;
  return j;
}

Json Json::number(double n) {
  Json j;
  j.type_ = Type::Number;
  j.number_ = n;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::String;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::Object;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::Bool) throw std::logic_error("Json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) throw std::logic_error("Json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) throw std::logic_error("Json: not a string");
  return string_;
}

const std::vector<Json>& Json::as_array() const {
  if (type_ != Type::Array) throw std::logic_error("Json: not an array");
  return array_;
}

const std::map<std::string, Json>& Json::as_object() const {
  if (type_ != Type::Object) throw std::logic_error("Json: not an object");
  return object_;
}

void Json::push_back(Json value) {
  if (type_ != Type::Array) throw std::logic_error("Json: not an array");
  array_.push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
  if (type_ != Type::Object) throw std::logic_error("Json: not an object");
  object_[std::move(key)] = std::move(value);
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) throw std::logic_error("Json: not an object");
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::Null:
      return true;
    case Type::Bool:
      return bool_ == other.bool_;
    case Type::Number:
      return number_ == other.number_;
    case Type::String:
      return string_ == other.string_;
    case Type::Array:
      return array_ == other.array_;
    case Type::Object:
      return object_ == other.object_;
  }
  return false;
}

std::string json_escape(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void dump_number(double n, std::string& out) {
  if (n == std::floor(n) && std::abs(n) < 1e15) {
    out += str_format("%lld", static_cast<long long>(n));
  } else {
    out += str_format("%.17g", n);
  }
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::Null:
      out = "null";
      break;
    case Type::Bool:
      out = bool_ ? "true" : "false";
      break;
    case Type::Number:
      dump_number(number_, out);
      break;
    case Type::String:
      out = json_escape(string_);
      break;
    case Type::Array: {
      out = "[";
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out.push_back(',');
        first = false;
        out += v.dump();
      }
      out.push_back(']');
      break;
    }
    case Type::Object: {
      out = "{";
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        out += json_escape(key);
        out.push_back(':');
        out += value.dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<Json> parse_document() {
    skip_ws();
    auto value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && ascii_isspace(text_[pos_])) ++pos_;
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool match_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return Json::string(std::move(*s));
      }
      case 't':
        return match_literal("true") ? std::optional(Json::boolean(true))
                                     : std::nullopt;
      case 'f':
        return match_literal("false") ? std::optional(Json::boolean(false))
                                      : std::nullopt;
      case 'n':
        return match_literal("null") ? std::optional(Json::null())
                                     : std::nullopt;
      default:
        return parse_number();
    }
  }

  std::optional<Json> parse_object() {
    if (!eat('{')) return std::nullopt;
    Json obj = Json::object();
    skip_ws();
    if (eat('}')) return obj;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      obj.set(std::move(*key), std::move(*value));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return obj;
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array() {
    if (!eat('[')) return std::nullopt;
    Json arr = Json::array();
    skip_ws();
    if (eat(']')) return arr;
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      arr.push_back(std::move(*value));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return arr;
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return std::nullopt;
              }
            }
            // UTF-8 encode the BMP code point (surrogates unsupported).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (ascii_isdigit(text_[pos_]) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Json::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace catalyst
