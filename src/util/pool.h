// Generation-checked slab pool for short-lived simulation objects.
//
// The event loop and fetch pipeline used to heap-allocate one small
// object per scheduled event / in-flight request and free it moments
// later — malloc traffic that dominates cache-miss profiles at
// population scale. SlabPool keeps all objects in one growable slab and
// recycles slots through a free list, so steady-state acquire/release
// does zero allocation.
//
// Handles are (slot index, generation) pairs packed into a uint64_t. A
// slot's generation bumps on every release, so a stale handle — one held
// past its object's release — dereferences to nullptr instead of someone
// else's object. That property is what lets the event loop implement
// O(1) cancel() as "release if still live" with no tombstone set.
//
// Not thread-safe by design: pools live inside a single shard thread,
// like every other engine structure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace catalyst {

template <class T>
class SlabPool {
 public:
  /// Opaque handle: (slot << 32) | generation. Never 0 for a live object
  /// (generations start at 1), so 0 can serve as "no handle".
  using Handle = std::uint64_t;
  static constexpr Handle kNull = 0;

  /// Takes a slot (reusing a released one when available) and returns its
  /// handle. The object is default-state: freshly constructed or reset by
  /// the previous release().
  Handle acquire() {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot].live = true;
    ++live_;
    return pack(slot, slots_[slot].gen);
  }

  /// The object behind `h`, or nullptr when `h` is stale/null. The
  /// pointer is invalidated by any later acquire() (slab growth) — use
  /// and drop it within one step.
  T* get(Handle h) {
    const std::uint32_t slot = static_cast<std::uint32_t>(h >> 32);
    if (slot >= slots_.size()) return nullptr;
    Entry& e = slots_[slot];
    if (!e.live || e.gen != static_cast<std::uint32_t>(h)) return nullptr;
    return &e.value;
  }
  const T* get(Handle h) const {
    return const_cast<SlabPool*>(this)->get(h);
  }

  /// Releases the object behind `h`: resets it to T{} (dropping any
  /// captured resources immediately), bumps the generation, and recycles
  /// the slot. Returns false when `h` was already stale (double release
  /// is a safe no-op).
  bool release(Handle h) {
    const std::uint32_t slot = static_cast<std::uint32_t>(h >> 32);
    if (slot >= slots_.size()) return false;
    Entry& e = slots_[slot];
    if (!e.live || e.gen != static_cast<std::uint32_t>(h)) return false;
    e.value = T{};
    e.live = false;
    ++e.gen;
    if (e.gen == 0) e.gen = 1;  // skip 0 after wrap so handles stay non-null
    --live_;
    free_.push_back(slot);
    return true;
  }

  /// Objects currently acquired.
  std::size_t live() const { return live_; }
  /// Slots ever created (high-water mark; tests/telemetry).
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Entry {
    T value{};
    std::uint32_t gen = 1;
    bool live = false;
  };

  static Handle pack(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<Handle>(slot) << 32) | gen;
  }

  std::vector<Entry> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
};

}  // namespace catalyst
