#include "util/url.h"

#include "util/strings.h"

namespace catalyst {

namespace {

bool valid_scheme(std::string_view s) {
  if (s.empty() || !ascii_isalpha(s[0])) return false;
  for (char c : s) {
    if (!ascii_isalpha(c) && !ascii_isdigit(c) && c != '+' && c != '-' &&
        c != '.') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<Url> Url::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  for (char c : text) {
    if (ascii_isspace(c)) return std::nullopt;
  }
  Url url;

  // Fragments never reach the server; drop them.
  if (const auto hash = text.find('#'); hash != std::string_view::npos) {
    text = text.substr(0, hash);
  }

  // scheme ':' "//"  — detect an absolute URL.
  const auto colon = text.find(':');
  std::string_view rest = text;
  if (colon != std::string_view::npos &&
      text.substr(colon + 1).substr(0, 2) == "//" &&
      valid_scheme(text.substr(0, colon))) {
    url.scheme = to_lower(text.substr(0, colon));
    rest = text.substr(colon + 3);
  } else if (starts_with(text, "//")) {
    // Network-path reference: inherit scheme at resolve time.
    rest = text.substr(2);
  } else {
    // Relative reference: path [ '?' query ].
    const auto q = text.find('?');
    url.path = std::string(q == std::string_view::npos ? text
                                                       : text.substr(0, q));
    if (q != std::string_view::npos) url.query = std::string(text.substr(q + 1));
    return url;
  }

  // authority [ path [ '?' query ] ]
  const auto path_start = rest.find('/');
  const auto query_start = rest.find('?');
  std::string_view authority =
      rest.substr(0, std::min(path_start, query_start));
  if (authority.empty()) return std::nullopt;

  const auto port_sep = authority.rfind(':');
  if (port_sep != std::string_view::npos) {
    std::uint64_t port = 0;
    if (!parse_u64(authority.substr(port_sep + 1), port) || port > 65535) {
      return std::nullopt;
    }
    url.port = static_cast<std::uint16_t>(port);
    authority = authority.substr(0, port_sep);
  }
  if (authority.empty()) return std::nullopt;
  url.host = to_lower(authority);

  if (path_start == std::string_view::npos) {
    url.path = "/";
    if (query_start != std::string_view::npos) {
      url.query = std::string(rest.substr(query_start + 1));
    }
  } else {
    std::string_view tail = rest.substr(path_start);
    const auto q = tail.find('?');
    url.path =
        std::string(q == std::string_view::npos ? tail : tail.substr(0, q));
    if (q != std::string_view::npos) url.query = std::string(tail.substr(q + 1));
  }
  return url;
}

std::string remove_dot_segments(std::string_view path) {
  std::vector<std::string_view> out;
  const bool absolute = !path.empty() && path[0] == '/';
  bool trailing_slash = false;
  for (std::string_view seg : split(path, '/')) {
    if (seg == "." || seg.empty()) {
      trailing_slash = true;
      continue;
    }
    if (seg == "..") {
      if (!out.empty()) out.pop_back();
      trailing_slash = true;
      continue;
    }
    out.push_back(seg);
    trailing_slash = false;
  }
  std::string result = absolute ? "/" : "";
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i > 0) result.push_back('/');
    result.append(out[i]);
  }
  if (trailing_slash && !out.empty()) result.push_back('/');
  if (result.empty()) result = absolute ? "/" : "";
  return result;
}

Url Url::resolve(const Url& reference) const {
  if (reference.is_absolute()) {
    Url r = reference;
    r.path = remove_dot_segments(r.path.empty() ? "/" : r.path);
    return r;
  }
  Url result;
  result.scheme = scheme;
  if (!reference.host.empty()) {
    // Network-path reference.
    result.host = reference.host;
    result.port = reference.port;
    result.path = remove_dot_segments(
        reference.path.empty() ? "/" : reference.path);
    result.query = reference.query;
    return result;
  }
  result.host = host;
  result.port = port;
  if (reference.path.empty()) {
    result.path = path;
    result.query =
        reference.query.empty() ? query : reference.query;
    return result;
  }
  if (reference.path[0] == '/') {
    result.path = remove_dot_segments(reference.path);
  } else {
    // Merge with the base path's directory.
    const auto slash = path.rfind('/');
    std::string merged =
        (slash == std::string::npos ? "/" : path.substr(0, slash + 1));
    merged += reference.path;
    result.path = remove_dot_segments(merged);
  }
  result.query = reference.query;
  return result;
}

std::uint16_t Url::effective_port() const {
  if (port != 0) return port;
  if (scheme == "https") return 443;
  if (scheme == "http") return 80;
  return 0;
}

std::string Url::origin() const {
  std::string out = scheme + "://" + host;
  const std::uint16_t def = (scheme == "https") ? 443
                            : (scheme == "http") ? 80
                                                 : 0;
  if (port != 0 && port != def) {
    out += ":" + std::to_string(port);
  }
  return out;
}

bool Url::same_origin(const Url& other) const {
  return scheme == other.scheme && host == other.host &&
         effective_port() == other.effective_port();
}

std::string Url::path_and_query() const {
  std::string out;
  append_path_and_query(out);
  return out;
}

void Url::append_path_and_query(std::string& out) const {
  if (path.empty()) {
    out.push_back('/');
  } else {
    out.append(path);
  }
  if (!query.empty()) {
    out.push_back('?');
    out.append(query);
  }
}

std::string Url::to_string() const {
  if (!is_absolute()) return path_and_query();
  return origin() + path_and_query();
}

}  // namespace catalyst
