// Global string interning for hot-path keys.
//
// The simulator keys almost everything by small strings — resource paths,
// host names, cache keys — and population-scale replay hashes and
// compares those strings millions of times. InternTable maps each
// distinct string to a dense uint32_t handle once; after that, every
// lookup, comparison and map key is integer-sized.
//
// Threading model: the fleet engine is share-nothing — each shard thread
// owns its sites, caches and testbeds outright. Interned ids follow the
// same discipline: `tls_intern()` returns a thread-local table, so
// interning is lock-free, and ids are valid only on the thread that
// produced them. Ids must therefore NEVER be serialized, stored in
// cross-thread structures, or compared across threads. Everything that
// leaves a shard (reports, traces, golden files) uses the original
// strings, which is also what keeps output byte-identical for any
// --threads value.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.h"

namespace catalyst {

/// Dense handle for an interned string; valid on the interning thread
/// only. Ids are assigned 0,1,2,... in first-intern order.
using InternId = std::uint32_t;

/// Sentinel for "no string": never returned by intern().
inline constexpr InternId kNoIntern = 0xffffffffu;

/// Semantic aliases for the hottest key spaces.
using SiteId = InternId;      // site identities in workload/fleet code
using HostId = InternId;      // network host names ("a.example")
using ResourceId = InternId;  // resource paths ("/index.html")

/// Append-only open-addressing string → InternId table. No erase: a
/// handle, once issued, stays valid for the table's lifetime, and
/// id-indexed side tables (vectors) never shift.
class InternTable {
 public:
  InternTable();

  /// Returns the id for `s`, interning it on first sight. O(1) amortized.
  InternId intern(std::string_view s);

  /// Returns the id for `s` if already interned, else kNoIntern. Never
  /// allocates.
  InternId find(std::string_view s) const;

  /// The interned string for `id`. Reference stays valid forever (arena
  /// storage). Precondition: `id` was returned by this table.
  const std::string& str(InternId id) const { return strings_[id]; }
  std::string_view view(InternId id) const { return strings_[id]; }

  /// Cached FNV-1a of the interned string (computed once at intern time).
  std::uint64_t hash_of(InternId id) const { return hashes_[id]; }

  /// Number of distinct strings interned.
  std::size_t size() const { return strings_.size(); }

 private:
  void grow();
  std::size_t mask() const { return slots_.size() - 1; }

  // Probe slots hold id+1 so zero-initialised means empty.
  std::vector<std::uint32_t> slots_;
  // Per-id storage, indexed by InternId. std::deque: stable references
  // across growth, so str() results can be held indefinitely.
  std::deque<std::string> strings_;
  std::vector<std::uint64_t> hashes_;
};

/// The calling thread's intern table (one per thread, created on first
/// use). All hot-path code shares this instance so equal strings map to
/// equal ids within a shard.
InternTable& tls_intern();

/// Convenience: intern on the calling thread's table.
inline InternId intern(std::string_view s) { return tls_intern().intern(s); }

/// Convenience: the interned string for a calling-thread id.
inline const std::string& interned_str(InternId id) {
  return tls_intern().str(id);
}

}  // namespace catalyst
