// Small ASCII string helpers shared across the HTTP / HTML layers.
//
// HTTP header names and HTML tag names are ASCII-case-insensitive, so all
// case folding here is deliberately ASCII-only (locale-independent).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace catalyst {

constexpr char ascii_tolower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

constexpr bool ascii_isspace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f';
}

constexpr bool ascii_isdigit(char c) { return c >= '0' && c <= '9'; }

constexpr bool ascii_isalpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

/// Lowercases an ASCII string.
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single delimiter character; keeps empty pieces.
std::vector<std::string_view> split(std::string_view s, char delim);

/// True if `s` begins with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive variant of starts_with.
bool istarts_with(std::string_view s, std::string_view prefix);

/// Parses a non-negative decimal integer; returns false on any non-digit,
/// overflow, or empty input.
bool parse_u64(std::string_view s, std::uint64_t& out);

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

}  // namespace catalyst
