// Bloom filter — the data structure behind the Cache-Digest family of
// proposals (related work the paper builds on): the client summarizes
// which URLs it has cached so the server can avoid pushing them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace catalyst {

class BloomFilter {
 public:
  /// `bits` is rounded up to a multiple of 8; `hash_count` in [1, 16].
  BloomFilter(std::size_t bits, int hash_count);

  /// Sizes a filter for `expected_entries` at roughly the given false-
  /// positive rate (standard m = -n ln p / ln²2, k = m/n ln 2).
  static BloomFilter for_entries(std::size_t expected_entries,
                                 double false_positive_rate);

  void insert(std::string_view key);
  bool may_contain(std::string_view key) const;

  std::size_t bit_count() const { return bits_.size() * 8; }
  int hash_count() const { return hash_count_; }
  ByteCount byte_size() const { return bits_.size(); }

  /// Fraction of set bits (saturation diagnostic).
  double fill_ratio() const;

  /// Wire format: "<k>:<base64 bits>".
  std::string serialize() const;
  static std::optional<BloomFilter> deserialize(std::string_view text);

 private:
  std::uint64_t bit_index(std::string_view key, int i) const;

  std::vector<std::uint8_t> bits_;
  int hash_count_;
};

}  // namespace catalyst
