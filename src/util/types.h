// Core value types shared by every catalyst subsystem.
//
// The simulator runs on a virtual clock with nanosecond resolution. We wrap
// std::chrono in a small set of strong types so that durations, absolute
// simulation times, bandwidths and byte counts cannot be mixed up silently.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace catalyst {

/// Length of a simulated time interval. Nanosecond resolution.
using Duration = std::chrono::nanoseconds;

/// Convenience duration constructors (accept integral or floating counts).
constexpr Duration nanoseconds(std::int64_t n) { return Duration{n}; }
constexpr Duration microseconds(std::int64_t n) { return Duration{n * 1000}; }
constexpr Duration milliseconds(std::int64_t n) {
  return Duration{n * 1'000'000};
}
constexpr Duration seconds(std::int64_t n) {
  return Duration{n * 1'000'000'000};
}
constexpr Duration minutes(std::int64_t n) { return seconds(n * 60); }
constexpr Duration hours(std::int64_t n) { return seconds(n * 3600); }
constexpr Duration days(std::int64_t n) { return hours(n * 24); }

/// Fractional-second duration (rounds to whole nanoseconds).
constexpr Duration seconds_f(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e9)};
}
constexpr Duration milliseconds_f(double ms) { return seconds_f(ms / 1e3); }

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1e9;
}
constexpr double to_millis(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}

/// An absolute instant on the simulation clock (time since simulation
/// epoch). Strongly typed so it cannot be confused with a Duration.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(Duration since_epoch)
      : since_epoch_(since_epoch) {}

  constexpr Duration since_epoch() const { return since_epoch_; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint{since_epoch_ + d};
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint{since_epoch_ - d};
  }
  constexpr Duration operator-(TimePoint other) const {
    return since_epoch_ - other.since_epoch_;
  }
  constexpr TimePoint& operator+=(Duration d) {
    since_epoch_ += d;
    return *this;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  static constexpr TimePoint max() {
    return TimePoint{Duration{std::numeric_limits<std::int64_t>::max()}};
  }

 private:
  Duration since_epoch_{0};
};

/// Number of bytes (payload sizes, wire sizes, cache capacities).
using ByteCount = std::uint64_t;

constexpr ByteCount KiB(std::uint64_t n) { return n * 1024; }
constexpr ByteCount MiB(std::uint64_t n) { return n * 1024 * 1024; }

/// Link capacity. Stored as bits per second to match how network conditions
/// are quoted in the paper (8 Mbps, 60 Mbps, ...).
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr explicit Bandwidth(double bits_per_second)
      : bits_per_second_(bits_per_second) {}

  constexpr double bits_per_second() const { return bits_per_second_; }
  constexpr double bytes_per_second() const { return bits_per_second_ / 8.0; }

  /// Time to clock `bytes` onto the wire at this rate.
  constexpr Duration transmission_time(ByteCount bytes) const {
    return seconds_f(static_cast<double>(bytes) / bytes_per_second());
  }

  constexpr auto operator<=>(const Bandwidth&) const = default;

 private:
  double bits_per_second_{0.0};
};

constexpr Bandwidth bps(double n) { return Bandwidth{n}; }
constexpr Bandwidth kbps(double n) { return Bandwidth{n * 1e3}; }
constexpr Bandwidth mbps(double n) { return Bandwidth{n * 1e6}; }
constexpr Bandwidth gbps(double n) { return Bandwidth{n * 1e9}; }

/// Renders a duration as a short human-readable string ("12.3 ms").
std::string format_duration(Duration d);

/// Renders a byte count as a short human-readable string ("1.2 MiB").
std::string format_bytes(ByteCount n);

}  // namespace catalyst
