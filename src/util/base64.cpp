#include "util/base64.h"

#include <array>
#include <cstdint>

namespace catalyst {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> build_reverse() {
  std::array<std::int8_t, 256> table{};
  for (auto& v : table) v = -1;
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] =
        static_cast<std::int8_t>(i);
  }
  return table;
}

constexpr std::array<std::int8_t, 256> kReverse = build_reverse();

}  // namespace

std::string base64_encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t n =
        (static_cast<std::uint32_t>(static_cast<unsigned char>(data[i]))
         << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(data[i + 1]))
         << 8) |
        static_cast<std::uint32_t>(static_cast<unsigned char>(data[i + 2]));
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back(kAlphabet[n & 63]);
    i += 3;
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t n =
        static_cast<std::uint32_t>(static_cast<unsigned char>(data[i]))
        << 16;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.append("==");
  } else if (rest == 2) {
    const std::uint32_t n =
        (static_cast<std::uint32_t>(static_cast<unsigned char>(data[i]))
         << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(data[i + 1]))
         << 8);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::optional<std::string> base64_decode(std::string_view text) {
  if (text.size() % 4 != 0) return std::nullopt;
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::uint32_t n = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = text[i + k];
      if (c == '=') {
        // Padding only allowed in the final two positions of the final
        // quantum.
        if (i + 4 != text.size() || k < 2) return std::nullopt;
        ++pad;
        n <<= 6;
        continue;
      }
      if (pad > 0) return std::nullopt;  // data after padding
      const std::int8_t v = kReverse[static_cast<unsigned char>(c)];
      if (v < 0) return std::nullopt;
      n = (n << 6) | static_cast<std::uint32_t>(v);
    }
    out.push_back(static_cast<char>((n >> 16) & 0xFF));
    if (pad < 2) out.push_back(static_cast<char>((n >> 8) & 0xFF));
    if (pad < 1) out.push_back(static_cast<char>(n & 0xFF));
  }
  return out;
}

}  // namespace catalyst
