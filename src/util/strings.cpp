#include "util/strings.h"

#include <cstdarg>
#include <cstdio>
#include <limits>

namespace catalyst {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(ascii_tolower(c));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_tolower(a[i]) != ascii_tolower(b[i])) return false;
  }
  return true;
}

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && ascii_isspace(s[begin])) ++begin;
  while (end > begin && ascii_isspace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         iequals(s.substr(0, prefix.size()), prefix);
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (char c : s) {
    if (!ascii_isdigit(c)) return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace catalyst
