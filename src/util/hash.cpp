#include "util/hash.h"

#include <bit>
#include <cstring>

namespace catalyst {

namespace {
constexpr std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}
}  // namespace

Sha1::Sha1() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
}

void Sha1::update(std::string_view data) {
  total_bytes_ += data.size();
  const auto* p = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t remaining = data.size();
  // Top up a partially filled buffer first.
  if (buffered_ > 0) {
    const std::size_t take = std::min(remaining, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, p, take);
    buffered_ += take;
    p += take;
    remaining -= take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (remaining >= 64) {
    process_block(p);
    p += 64;
    remaining -= 64;
  }
  if (remaining > 0) {
    std::memcpy(buffer_.data(), p, remaining);
    buffered_ = remaining;
  }
}

Sha1::Digest Sha1::finalize() {
  // Append 0x80, pad with zeros, then the 64-bit big-endian bit length.
  const std::uint64_t bit_len = total_bytes_ * 8;
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  update(std::string_view(reinterpret_cast<const char*>(pad), pad_len));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  total_bytes_ -= pad_len;  // keep the recorded length consistent
  update(std::string_view(reinterpret_cast<const char*>(len_be), 8));

  Digest out{};
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(4 * i) + 0] =
        static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)] >> 24);
    out[static_cast<std::size_t>(4 * i) + 1] =
        static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)] >> 16);
    out[static_cast<std::size_t>(4 * i) + 2] =
        static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)] >> 8);
    out[static_cast<std::size_t>(4 * i) + 3] =
        static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)]);
  }
  return out;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[4 * i]} << 24) |
           (std::uint32_t{block[4 * i + 1]} << 16) |
           (std::uint32_t{block[4 * i + 2]} << 8) |
           std::uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1::Digest Sha1::digest(std::string_view data) {
  Sha1 s;
  s.update(data);
  return s.finalize();
}

std::string Sha1::hex_digest(std::string_view data) {
  const Digest d = digest(data);
  return to_hex(d.data(), d.size());
}

std::string to_hex(const std::uint8_t* data, std::size_t size) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(size * 2);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xF]);
  }
  return out;
}

}  // namespace catalyst
