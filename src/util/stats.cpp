#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace catalyst {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Summary::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

double Summary::sum() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double Summary::mean() const {
  if (samples_.empty()) throw std::logic_error("Summary: empty");
  return sum() / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary: empty");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary: empty");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::ci95_halfwidth() const {
  if (samples_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::median() const { return percentile(50.0); }

double Summary::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("Summary: empty");
  ensure_sorted();
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: bad range or zero bins");
  }
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(
      t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::string Histogram::sparkline() const {
  static const char* kBlocks[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇",
                                  "█"};
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t c : counts_) {
    if (peak == 0) {
      out += kBlocks[0];
    } else {
      const std::size_t level = (c * 8 + peak - 1) / peak;  // ceil, 0..8
      out += kBlocks[std::min<std::size_t>(level, 8)];
    }
  }
  return out;
}

}  // namespace catalyst
