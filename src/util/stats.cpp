#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace catalyst {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Summary::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

void Summary::merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_valid_ = false;
}

double Summary::sum() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double Summary::mean() const {
  if (samples_.empty()) throw std::logic_error("Summary: empty");
  return sum() / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary: empty");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary: empty");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::ci95_halfwidth() const {
  if (samples_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::median() const { return percentile(50.0); }

double Summary::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("Summary: empty");
  ensure_sorted();
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

BinAxis::BinAxis(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("BinAxis: bad range or zero bins");
  }
}

std::size_t BinAxis::index(double x) const {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins_));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(bins_) - 1);
  return static_cast<std::size_t>(bin);
}

double BinAxis::lower_edge(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(bins_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : axis_(lo, hi, bins), counts_(bins, 0) {}

void Histogram::add(double x) {
  ++counts_[axis_.index(x)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (!(other.axis_ == axis_)) {
    throw std::invalid_argument("Histogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

std::string Histogram::sparkline() const {
  static const char* kBlocks[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇",
                                  "█"};
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t c : counts_) {
    if (peak == 0) {
      out += kBlocks[0];
    } else {
      const std::size_t level = (c * 8 + peak - 1) / peak;  // ceil, 0..8
      out += kBlocks[std::min<std::size_t>(level, 8)];
    }
  }
  return out;
}

void CacheCounters::merge(const CacheCounters& other) {
  from_network += other.from_network;
  from_cache += other.from_cache;
  not_modified += other.not_modified;
  from_sw_cache += other.from_sw_cache;
  from_push += other.from_push;
  stale_served += other.stale_served;
}

void FaultCounters::merge(const FaultCounters& other) {
  timeouts += other.timeouts;
  retries += other.retries;
  connection_failures += other.connection_failures;
  fallback_revalidations += other.fallback_revalidations;
  failed_loads += other.failed_loads;
}

void OracleCounters::merge(const OracleCounters& other) {
  checked += other.checked;
  allowed_stale += other.allowed_stale;
  violations += other.violations;
  poisoned_serves += other.poisoned_serves;
  cross_user_leaks += other.cross_user_leaks;
}

void AtomicCacheCounters::record(const CacheCounters& delta) {
  slots_[0].fetch_add(delta.from_network, std::memory_order_relaxed);
  slots_[1].fetch_add(delta.from_cache, std::memory_order_relaxed);
  slots_[2].fetch_add(delta.not_modified, std::memory_order_relaxed);
  slots_[3].fetch_add(delta.from_sw_cache, std::memory_order_relaxed);
  slots_[4].fetch_add(delta.from_push, std::memory_order_relaxed);
  slots_[5].fetch_add(delta.stale_served, std::memory_order_relaxed);
}

CacheCounters AtomicCacheCounters::snapshot() const {
  CacheCounters c;
  c.from_network = slots_[0].load(std::memory_order_relaxed);
  c.from_cache = slots_[1].load(std::memory_order_relaxed);
  c.not_modified = slots_[2].load(std::memory_order_relaxed);
  c.from_sw_cache = slots_[3].load(std::memory_order_relaxed);
  c.from_push = slots_[4].load(std::memory_order_relaxed);
  c.stale_served = slots_[5].load(std::memory_order_relaxed);
  return c;
}

}  // namespace catalyst
