#include "util/types.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace catalyst {

std::string format_duration(Duration d) {
  const double ns = static_cast<double>(d.count());
  std::array<char, 48> buf{};
  if (std::abs(ns) < 1e3) {
    std::snprintf(buf.data(), buf.size(), "%.0f ns", ns);
  } else if (std::abs(ns) < 1e6) {
    std::snprintf(buf.data(), buf.size(), "%.1f us", ns / 1e3);
  } else if (std::abs(ns) < 1e9) {
    std::snprintf(buf.data(), buf.size(), "%.1f ms", ns / 1e6);
  } else if (std::abs(ns) < 120e9) {
    std::snprintf(buf.data(), buf.size(), "%.2f s", ns / 1e9);
  } else if (std::abs(ns) < 2 * 3600e9) {
    std::snprintf(buf.data(), buf.size(), "%.0f min", ns / 60e9);
  } else if (std::abs(ns) < 48 * 3600e9) {
    std::snprintf(buf.data(), buf.size(), "%.0f h", ns / 3600e9);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.0f d", ns / 86400e9);
  }
  return buf.data();
}

std::string format_bytes(ByteCount n) {
  std::array<char, 48> buf{};
  const double b = static_cast<double>(n);
  if (n < 1024) {
    std::snprintf(buf.data(), buf.size(), "%llu B",
                  static_cast<unsigned long long>(n));
  } else if (n < 1024 * 1024) {
    std::snprintf(buf.data(), buf.size(), "%.1f KiB", b / 1024.0);
  } else if (n < 1024ull * 1024 * 1024) {
    std::snprintf(buf.data(), buf.size(), "%.2f MiB", b / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf.data(), buf.size(), "%.2f GiB",
                  b / (1024.0 * 1024.0 * 1024.0));
  }
  return buf.data();
}

}  // namespace catalyst
