// Descriptive statistics for experiment aggregation.
//
// Figure 3 reports *average* PLT reduction over sites and revisit delays;
// we additionally report medians, percentiles and 95% confidence intervals
// so the benches can show how tight the averages are.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace catalyst {

/// Accumulates samples; computes summary statistics on demand.
class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const;
  double median() const;
  /// Linear-interpolation percentile, p in [0, 100].
  double percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Used for console sparkline rendering in benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }

  /// One-line unicode block rendering ("▁▃▇█▅▂  ").
  std::string sparkline() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace catalyst
