// Descriptive statistics for experiment aggregation.
//
// Figure 3 reports *average* PLT reduction over sites and revisit delays;
// we additionally report medians, percentiles and 95% confidence intervals
// so the benches can show how tight the averages are.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace catalyst {

/// Accumulates samples; computes summary statistics on demand.
class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  /// Appends all of `other`'s samples (in their insertion order), so that
  /// merging per-shard summaries in a canonical order yields exactly the
  /// sample sequence a single-threaded accumulation would have produced.
  void merge(const Summary& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const;
  double median() const;
  /// Linear-interpolation percentile, p in [0, 100].
  double percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-bin axis over [lo, hi): maps a sample to a clamped bin index.
/// The single bucketing core shared by util Histogram (linear space) and
/// obs::PhaseHistogram (log10 space) so the two can never drift apart.
class BinAxis {
 public:
  /// Throws std::invalid_argument on zero bins or hi <= lo.
  BinAxis(double lo, double hi, std::size_t bins);

  std::size_t bins() const { return bins_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Bin holding `x`; out-of-range samples clamp to the first/last bin.
  std::size_t index(double x) const;

  /// Inclusive lower / exclusive upper edge of `bin` (unclamped linear
  /// interpolation of the range).
  double lower_edge(std::size_t bin) const;
  double upper_edge(std::size_t bin) const { return lower_edge(bin + 1); }

  bool operator==(const BinAxis& other) const = default;

 private:
  double lo_;
  double hi_;
  std::size_t bins_;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Used for console sparkline rendering in benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }

  /// Adds `other`'s bin counts into this histogram. Both histograms must
  /// have the same range and bin count; throws std::invalid_argument
  /// otherwise.
  void merge(const Histogram& other);

  /// One-line unicode block rendering ("▁▃▇█▅▂  ").
  std::string sparkline() const;

 private:
  BinAxis axis_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Per-visit fetch-outcome tallies (one slot per FetchSource, plus the
/// staleness audit). A plain value type so reports can merge and compare
/// them; the concurrent mirror below feeds one of these per shard.
struct CacheCounters {
  std::uint64_t from_network = 0;   // full downloads
  std::uint64_t from_cache = 0;     // fresh HTTP-cache hits
  std::uint64_t not_modified = 0;   // revalidated 304s
  std::uint64_t from_sw_cache = 0;  // Service-Worker cache hits
  std::uint64_t from_push = 0;      // server-push deliveries
  std::uint64_t stale_served = 0;   // audit: cache bytes != origin bytes

  void merge(const CacheCounters& other);

  /// Every resource outcome (stale_served overlaps the others, excluded).
  std::uint64_t total() const {
    return from_network + from_cache + not_modified + from_sw_cache +
           from_push;
  }
  /// Responses answered without a full body download.
  std::uint64_t avoided_downloads() const {
    return from_cache + not_modified + from_sw_cache + from_push;
  }

  bool operator==(const CacheCounters& other) const = default;
};

/// Fault/degradation tallies from resilient page loads. All zero on clean
/// runs — reports only serialize them when any() so zero-fault output is
/// byte-identical to builds without the fault layer.
struct FaultCounters {
  std::uint64_t timeouts = 0;                // request deadlines fired
  std::uint64_t retries = 0;                 // re-dispatched attempts
  std::uint64_t connection_failures = 0;     // detectable mid-stream errors
  std::uint64_t fallback_revalidations = 0;  // SW degraded-mode cond. GETs
  std::uint64_t failed_loads = 0;            // resources finishing with 5xx

  void merge(const FaultCounters& other);

  bool any() const {
    return timeouts != 0 || retries != 0 || connection_failures != 0 ||
           fallback_revalidations != 0 || failed_loads != 0;
  }

  bool operator==(const FaultCounters& other) const = default;
};

/// Byte-equivalence oracle tallies (check::ByteOracle verdicts aggregated
/// across page loads). All zero when no oracle is installed — reports only
/// serialize them when any() so oracle-off output is byte-identical to
/// builds without the check layer.
struct OracleCounters {
  std::uint64_t checked = 0;        // auditable serves (fresh+stale+viol)
  std::uint64_t allowed_stale = 0;  // stale within RFC 9111 freshness
  std::uint64_t violations = 0;     // stale with no freshness excuse
  std::uint64_t poisoned_serves = 0;   // of violations: unkeyed-input bytes
  std::uint64_t cross_user_leaks = 0;  // of violations: another user's input

  void merge(const OracleCounters& other);

  bool any() const { return checked != 0; }

  bool operator==(const OracleCounters& other) const = default;
};

/// Lock-free mirror of CacheCounters: shard worker threads record deltas
/// with relaxed atomics (no ordering is needed — each increment is an
/// independent tally), and the coordinator snapshots after joining the
/// workers. This is what lets a running fleet expose live fleet-wide
/// progress counters without a mutex on the hot path.
class AtomicCacheCounters {
 public:
  void record(const CacheCounters& delta);
  CacheCounters snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, 6> slots_{};
};

}  // namespace catalyst
