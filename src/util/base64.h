// Base64 encoding (RFC 4648) — used to carry binary cache digests in
// HTTP header fields.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace catalyst {

/// Standard base64 with padding.
std::string base64_encode(std::string_view data);

/// Strict decode; nullopt on invalid characters or bad padding.
std::optional<std::string> base64_decode(std::string_view text);

}  // namespace catalyst
