// Content hashing used for entity-tag (ETag) generation and fast lookups.
//
// ETags in the origin server are derived from a SHA-1 digest of resource
// content, mirroring what real servers (nginx, Caddy) derive from content
// or mtime/size. FNV-1a is used where a cheap non-cryptographic hash is
// enough (hash maps, deterministic content synthesis).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace catalyst {

/// 64-bit FNV-1a over arbitrary bytes.
constexpr std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// SHA-1 digest (20 bytes). Self-contained implementation of RFC 3174.
class Sha1 {
 public:
  using Digest = std::array<std::uint8_t, 20>;

  Sha1();

  /// Feeds more input. May be called repeatedly.
  void update(std::string_view data);

  /// Finalizes and returns the digest. The object must not be updated
  /// afterwards.
  Digest finalize();

  /// One-shot convenience.
  static Digest digest(std::string_view data);

  /// One-shot digest rendered as lowercase hex.
  static std::string hex_digest(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Lowercase hex rendering of arbitrary bytes.
std::string to_hex(const std::uint8_t* data, std::size_t size);

}  // namespace catalyst
