// SmallFn: a move-only callable wrapper with a fat inline buffer.
//
// The event loop dispatches one closure per simulated event — hundreds of
// thousands per second at fleet scale — and the self-profile showed most
// of that time inside std::function machinery: libstdc++'s inline buffer
// is 16 bytes, so nearly every capturing closure on the fetch path
// (continuations holding Response objects, callback chains, `this`
// pointers plus a couple of handles) spills to the heap and back on every
// schedule/dispatch cycle. SmallFn widens the inline buffer to 48 bytes
// (the p99 capture size observed across the engine) and drops the
// copyability requirement std::function imposes, so move-only captures
// work and moves are two pointer-sized stores plus a memcpy of the
// buffer. Closures that still don't fit fall back to a single heap cell,
// exactly like std::function — correctness never depends on the capture
// size.
//
// Deliberately not provided: copy construction (the engine never copies a
// scheduled callback), target_type/target (no RTTI), and allocator
// support. SlabPool resets slots with `value = T{}`, which maps to the
// move-assign-from-empty path here.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace catalyst {

inline constexpr std::size_t kSmallFnInlineBytes = 48;

template <class Sig, std::size_t InlineBytes = kSmallFnInlineBytes>
class SmallFn;  // primary template: only the R(Args...) partial below

template <class R, class... Args, std::size_t InlineBytes>
class SmallFn<R(Args...), InlineBytes> {
 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Wraps any callable. Captures up to InlineBytes (and at most
  /// max_align_t alignment) live in the inline buffer; larger ones are
  /// boxed on the heap, preserving std::function's "always works"
  /// contract.
  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<
                !std::is_same_v<D, SmallFn> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
      invoke_ = [](void* obj, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(obj)))(
            std::forward<Args>(args)...);
      };
      // Trivially copyable payloads (a `this` pointer plus a couple of
      // handles — the common fetch-path capture) leave manage_ null:
      // moves become a raw buffer copy and destruction is a no-op, the
      // same cost profile std::function gives its 16-byte inline case.
      if constexpr (!std::is_trivially_copyable_v<D>) {
        manage_ = [](Op op, void* self, void* other) {
          D* d = std::launder(reinterpret_cast<D*>(self));
          if (op == Op::kDestroy) {
            d->~D();
          } else {
            ::new (other) D(std::move(*d));
            d->~D();
          }
        };
      }
    } else {
      // Boxed path: the buffer holds a single owning pointer.
      D* boxed = new D(std::forward<F>(f));
      std::memcpy(buffer_, &boxed, sizeof(boxed));
      invoke_ = [](void* obj, Args&&... args) -> R {
        D* d;
        std::memcpy(&d, obj, sizeof(d));
        return (*d)(std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* self, void* other) {
        D* d;
        std::memcpy(&d, self, sizeof(d));
        if (op == Op::kDestroy) {
          delete d;
        } else {
          std::memcpy(other, &d, sizeof(d));
        }
      };
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(buffer_, std::forward<Args>(args)...);
  }

  void reset() {
    if (manage_ != nullptr) manage_(Op::kDestroy, buffer_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// True when D's capture state lives in the inline buffer (exposed so
  /// tests can assert which closures stay allocation-free).
  template <class F>
  static constexpr bool stores_inline() {
    return fits_inline<std::decay_t<F>>();
  }

 private:
  enum class Op { kDestroy, kMoveTo };
  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(Op, void* self, void* other);

  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= InlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  void move_from(SmallFn& other) noexcept {
    if (other.invoke_ == nullptr) return;
    if (other.manage_ == nullptr) {
      // Trivially relocatable payload: one fixed-size copy, no bookkeeping.
      std::memcpy(buffer_, other.buffer_, InlineBytes);
    } else {
      other.manage_(Op::kMoveTo, other.buffer_, buffer_);
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buffer_[InlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace catalyst
