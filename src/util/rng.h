// Deterministic pseudo-random number generation.
//
// Experiments must be bit-reproducible across runs and platforms, so we
// implement xoshiro256** (public-domain algorithm by Blackman & Vigna)
// seeded via SplitMix64 rather than relying on std:: engines whose
// distributions are implementation-defined. All distribution sampling is
// implemented here with fixed algorithms for the same reason.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace catalyst {

/// xoshiro256** seeded with SplitMix64. Cheap to copy; copies diverge.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child generator; stable for a given (state,
  /// stream) pair regardless of how many values the child consumes.
  Rng fork(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace catalyst
