#include "util/bloom.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/base64.h"
#include "util/hash.h"
#include "util/strings.h"

namespace catalyst {

BloomFilter::BloomFilter(std::size_t bits, int hash_count)
    : bits_((std::max<std::size_t>(bits, 8) + 7) / 8, 0),
      hash_count_(std::clamp(hash_count, 1, 16)) {}

BloomFilter BloomFilter::for_entries(std::size_t expected_entries,
                                     double false_positive_rate) {
  if (expected_entries == 0) expected_entries = 1;
  false_positive_rate = std::clamp(false_positive_rate, 1e-6, 0.5);
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(expected_entries) *
                   std::log(false_positive_rate) / (ln2 * ln2);
  const int k = std::max(1, static_cast<int>(std::lround(
                                m / static_cast<double>(expected_entries) *
                                ln2)));
  return BloomFilter(static_cast<std::size_t>(std::ceil(m)), k);
}

std::uint64_t BloomFilter::bit_index(std::string_view key, int i) const {
  // Double hashing: h1 + i*h2 (Kirsch–Mitzenmacher).
  const std::uint64_t h1 = fnv1a64(key);
  // A second independent hash: FNV over the key with a salt prefix.
  std::uint64_t h2 = 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull;
  for (char c : key) {
    h2 ^= static_cast<std::uint8_t>(c) + 0x9e37u;
    h2 *= 0x100000001b3ull;
  }
  return (h1 + static_cast<std::uint64_t>(i) * (h2 | 1)) %
         (bits_.size() * 8);
}

void BloomFilter::insert(std::string_view key) {
  for (int i = 0; i < hash_count_; ++i) {
    const std::uint64_t bit = bit_index(key, i);
    bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

bool BloomFilter::may_contain(std::string_view key) const {
  for (int i = 0; i < hash_count_; ++i) {
    const std::uint64_t bit = bit_index(key, i);
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

double BloomFilter::fill_ratio() const {
  std::size_t set = 0;
  for (std::uint8_t byte : bits_) {
    set += static_cast<std::size_t>(std::popcount(byte));
  }
  return static_cast<double>(set) / static_cast<double>(bits_.size() * 8);
}

std::string BloomFilter::serialize() const {
  return std::to_string(hash_count_) + ":" +
         base64_encode(std::string_view(
             reinterpret_cast<const char*>(bits_.data()), bits_.size()));
}

std::optional<BloomFilter> BloomFilter::deserialize(std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  std::uint64_t k = 0;
  if (!parse_u64(text.substr(0, colon), k) || k == 0 || k > 16) {
    return std::nullopt;
  }
  const auto raw = base64_decode(text.substr(colon + 1));
  if (!raw || raw->empty()) return std::nullopt;
  BloomFilter filter(raw->size() * 8, static_cast<int>(k));
  std::copy(raw->begin(), raw->end(),
            reinterpret_cast<char*>(filter.bits_.data()));
  return filter;
}

}  // namespace catalyst
