#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace catalyst {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - (std::uint64_t(-1) % span);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::normal(double mean, double stddev) {
  // Box-Muller; draw u1 in (0, 1] to keep log() finite.
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * mag;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate <= 0");
  return -std::log(1.0 - next_double()) / rate;
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("pareto: xm and alpha must be positive");
  }
  return xm / std::pow(1.0 - next_double(), 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_index: no positive weight");
  }
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numeric edge: land on the last entry
}

Rng Rng::fork(std::uint64_t stream) const {
  std::uint64_t mix = state_[0] ^ rotl(state_[2], 13) ^ (stream * 0xd1342543de82ef95ull);
  return Rng{splitmix64(mix)};
}

}  // namespace catalyst
