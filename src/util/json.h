// Minimal JSON document model with a writer and a strict parser.
//
// The `X-Etag-Config` header carries a JSON object mapping resource paths to
// ETags (mirroring the paper's Caddy implementation), so both the server
// (encode) and the Service Worker (decode) need a real JSON round trip whose
// byte size we can account against transmission time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace catalyst {

/// A JSON value: null, bool, number (double), string, array or object.
/// Object keys keep deterministic (sorted) order so serialization is stable.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  static Json null() { return Json{}; }
  static Json boolean(bool b);
  static Json number(double n);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_string() const { return type_ == Type::String; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_bool() const { return type_ == Type::Bool; }

  /// Accessors; throw std::logic_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& as_array() const;
  const std::map<std::string, Json>& as_object() const;

  /// Array append (requires array type).
  void push_back(Json value);

  /// Object set (requires object type).
  void set(std::string key, Json value);

  /// Object lookup; nullptr when absent (requires object type).
  const Json* find(std::string_view key) const;

  /// Compact serialization (no whitespace).
  std::string dump() const;

  /// Strict parse of a complete JSON document; nullopt on any error
  /// (trailing garbage, bad escapes, unterminated containers, ...).
  static std::optional<Json> parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

/// Escapes a string for embedding in JSON (adds surrounding quotes).
std::string json_escape(std::string_view s);

}  // namespace catalyst
