#include "util/table.h"

#include <cstdio>
#include <stdexcept>

#include "util/strings.h"

namespace catalyst {

namespace {

/// Display width: counts UTF-8 code points, not bytes, so box alignment
/// survives unicode cell content (e.g. sparklines, "±").
std::size_t display_width(const std::string& s) {
  std::size_t w = 0;
  for (char c : s) {
    if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++w;
  }
  return w;
}

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (ascii_isdigit(c)) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != ' ' &&
               c != 'x' && c != 'e') {
      return false;
    }
  }
  return digit_seen;
}

std::string pad(const std::string& s, std::size_t width, bool right_align) {
  const std::size_t w = display_width(s);
  if (w >= width) return s;
  const std::string fill(width - w, ' ');
  return right_align ? fill + s : s + fill;
}

}  // namespace

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row/header column count mismatch");
  }
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = display_width(header_[c]);
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], display_width(row[c]));
    }
  }

  auto rule = [&](const char* left, const char* mid, const char* right) {
    std::string out = left;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) out += "─";
      out += (c + 1 == widths.size()) ? right : mid;
    }
    out += "\n";
    return out;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule("┌", "┬", "┐");
  out += "│";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += " " + pad(header_[c], widths[c], false) + " │";
  }
  out += "\n";
  out += rule("├", "┼", "┤");
  for (const auto& row : rows_) {
    if (row.empty()) {
      out += rule("├", "┼", "┤");
      continue;
    }
    out += "│";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += " " + pad(row[c], widths[c], looks_numeric(row[c])) + " │";
    }
    out += "\n";
  }
  out += rule("└", "┴", "┘");
  return out;
}

void Table::print() const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), stdout);
}

}  // namespace catalyst
