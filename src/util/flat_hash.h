// Open-addressing flat hash map for the simulation hot path.
//
// std::map / std::unordered_map put every entry behind a pointer chase
// (tree nodes / bucket chains), which is where population-scale replay
// spends a surprising share of its time. FlatHashMap stores keys and
// values inline in a power-of-two slot array with linear probing, so a
// lookup is one hash, one probe run over contiguous memory, zero
// allocations.
//
// Deliberate non-goals, documented because determinism is a contract in
// this codebase:
//   - Iteration order is slot order, i.e. a function of insertion history
//     and hashing — NOT sorted, NOT insertion order. Never iterate a
//     FlatHashMap to produce report/trace output; keep a sorted sidecar
//     (see http::EtagConfig, server::Site) when output order matters.
//   - No pointer stability: any insert may rehash. Take values out or use
//     indices/handles when you need stable references.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

namespace catalyst {

/// SplitMix64 finalizer: cheap, well-mixed integer hashing (the identity
/// std::hash of integers is a trap for power-of-two open addressing).
constexpr std::uint64_t mix_u64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Default hasher: mixes integral keys, defers to std::hash otherwise.
template <class K>
struct FlatHash {
  std::size_t operator()(const K& key) const {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      return static_cast<std::size_t>(
          mix_u64(static_cast<std::uint64_t>(key)));
    } else {
      return std::hash<K>{}(key);
    }
  }
};

template <class K, class V, class Hash = FlatHash<K>>
class FlatHashMap {
 public:
  using value_type = std::pair<K, V>;

  FlatHashMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    ctrl_.assign(ctrl_.size(), kEmpty);
    slots_.clear();
    slots_.resize(ctrl_.size());
    size_ = 0;
    tombstones_ = 0;
  }

  /// Ensures capacity for `n` entries without further rehashing.
  void reserve(std::size_t n) {
    std::size_t want = 8;
    while (want * 7 < n * 8) want <<= 1;  // keep load factor under 7/8
    if (want > ctrl_.size()) rehash(want);
  }

  V* find(const K& key) {
    const std::size_t idx = find_index(key);
    return idx == kNpos ? nullptr : &slots_[idx].second;
  }
  const V* find(const K& key) const {
    const std::size_t idx = find_index(key);
    return idx == kNpos ? nullptr : &slots_[idx].second;
  }
  bool contains(const K& key) const { return find_index(key) != kNpos; }

  /// Inserts or overwrites. Returns true when the key was newly inserted.
  bool insert_or_assign(const K& key, V value) {
    maybe_grow();
    const auto [idx, existed] = probe_for_insert(key);
    if (existed) {
      slots_[idx].second = std::move(value);
      return false;
    }
    occupy(idx, key, std::move(value));
    return true;
  }

  /// Default-constructs on first access, like std::map::operator[].
  V& operator[](const K& key) {
    maybe_grow();
    const auto [idx, existed] = probe_for_insert(key);
    if (!existed) occupy(idx, key, V{});
    return slots_[idx].second;
  }

  bool erase(const K& key) {
    const std::size_t idx = find_index(key);
    if (idx == kNpos) return false;
    ctrl_[idx] = kTombstone;
    slots_[idx] = value_type{};  // release resources eagerly
    --size_;
    ++tombstones_;
    return true;
  }

  /// Visits every live entry (slot order — see header caveat).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) fn(slots_[i].first, slots_[i].second);
    }
  }
  template <class Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) fn(slots_[i].first, slots_[i].second);
    }
  }

  /// Slots currently allocated (tests/telemetry).
  std::size_t capacity() const { return ctrl_.size(); }

 private:
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  std::size_t mask() const { return ctrl_.size() - 1; }

  std::size_t find_index(const K& key) const {
    if (ctrl_.empty()) return kNpos;
    std::size_t idx = Hash{}(key)&mask();
    for (;;) {
      if (ctrl_[idx] == kEmpty) return kNpos;
      if (ctrl_[idx] == kFull && slots_[idx].first == key) return idx;
      idx = (idx + 1) & mask();
    }
  }

  /// First insertable slot for `key` (reusing a tombstone when possible),
  /// or the existing slot. Requires capacity (maybe_grow called).
  std::pair<std::size_t, bool> probe_for_insert(const K& key) {
    std::size_t idx = Hash{}(key)&mask();
    std::size_t first_tombstone = kNpos;
    for (;;) {
      if (ctrl_[idx] == kEmpty) {
        return {first_tombstone != kNpos ? first_tombstone : idx, false};
      }
      if (ctrl_[idx] == kTombstone) {
        if (first_tombstone == kNpos) first_tombstone = idx;
      } else if (slots_[idx].first == key) {
        return {idx, true};
      }
      idx = (idx + 1) & mask();
    }
  }

  void occupy(std::size_t idx, const K& key, V value) {
    if (ctrl_[idx] == kTombstone) --tombstones_;
    ctrl_[idx] = kFull;
    slots_[idx].first = key;
    slots_[idx].second = std::move(value);
    ++size_;
  }

  void maybe_grow() {
    if (ctrl_.empty()) {
      rehash(8);
      return;
    }
    // Count tombstones toward load so probe runs stay short; rehash
    // doubles only when live entries demand it, otherwise just cleans.
    if ((size_ + tombstones_ + 1) * 8 >= ctrl_.size() * 7) {
      rehash(size_ * 8 >= ctrl_.size() * 5 ? ctrl_.size() * 2
                                           : ctrl_.size());
    }
  }

  void rehash(std::size_t new_capacity) {
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<value_type> old_slots = std::move(slots_);
    ctrl_.assign(new_capacity, kEmpty);
    slots_.clear();
    slots_.resize(new_capacity);
    size_ = 0;
    tombstones_ = 0;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] != kFull) continue;
      const auto [idx, existed] = probe_for_insert(old_slots[i].first);
      assert(!existed);
      occupy(idx, old_slots[i].first, std::move(old_slots[i].second));
    }
  }

  std::vector<std::uint8_t> ctrl_;
  std::vector<value_type> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace catalyst
