// Console table rendering for paper-style bench output.
//
// Every bench binary prints its table/figure in the same aligned format so
// EXPERIMENTS.md can quote them verbatim.
#pragma once

#include <string>
#include <vector>

namespace catalyst {

/// Column-aligned text table with a title, a header row and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row; number of columns is fixed by it.
  void set_header(std::vector<std::string> header);

  /// Adds a data row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next added row.
  void add_separator();

  /// Renders with unicode box-drawing. Numeric-looking cells right-align.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace catalyst
