#include "util/intern.h"

namespace catalyst {

namespace {
constexpr std::size_t kInitialSlots = 256;  // power of two
}  // namespace

InternTable::InternTable() : slots_(kInitialSlots, 0) {}

InternId InternTable::intern(std::string_view s) {
  const std::uint64_t h = fnv1a64(s);
  std::size_t idx = static_cast<std::size_t>(h) & mask();
  for (;;) {
    const std::uint32_t slot = slots_[idx];
    if (slot == 0) break;  // empty: not present
    const InternId id = slot - 1;
    if (hashes_[id] == h && strings_[id] == s) return id;
    idx = (idx + 1) & mask();
  }
  const auto id = static_cast<InternId>(strings_.size());
  strings_.emplace_back(s);
  hashes_.push_back(h);
  slots_[idx] = id + 1;
  if ((strings_.size() + 1) * 4 >= slots_.size() * 3) grow();
  return id;
}

InternId InternTable::find(std::string_view s) const {
  const std::uint64_t h = fnv1a64(s);
  std::size_t idx = static_cast<std::size_t>(h) & mask();
  for (;;) {
    const std::uint32_t slot = slots_[idx];
    if (slot == 0) return kNoIntern;
    const InternId id = slot - 1;
    if (hashes_[id] == h && strings_[id] == s) return id;
    idx = (idx + 1) & mask();
  }
}

void InternTable::grow() {
  std::vector<std::uint32_t> fresh(slots_.size() * 2, 0);
  const std::size_t m = fresh.size() - 1;
  for (InternId id = 0; id < strings_.size(); ++id) {
    std::size_t idx = static_cast<std::size_t>(hashes_[id]) & m;
    while (fresh[idx] != 0) idx = (idx + 1) & m;
    fresh[idx] = id + 1;
  }
  slots_ = std::move(fresh);
}

InternTable& tls_intern() {
  thread_local InternTable table;
  return table;
}

}  // namespace catalyst
