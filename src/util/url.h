// URL parsing, serialization and reference resolution (RFC 3986 subset).
//
// The browser emulator resolves every link it discovers in HTML/CSS against
// the document base URL, and origins (scheme + host + port) decide which
// connection pool and which Service Worker a request is routed through —
// exactly the same-origin rule the paper's Service Worker relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace catalyst {

/// A parsed absolute or relative URL.
struct Url {
  std::string scheme;   // lowercase; empty for relative references
  std::string host;     // lowercase; empty for relative references
  std::uint16_t port{0};  // 0 = scheme default
  std::string path;     // always begins with '/' when host is present
  std::string query;    // without the leading '?'

  /// Parses an absolute URL or relative reference. Returns nullopt on
  /// syntactically hopeless input (empty, embedded whitespace, bad port).
  static std::optional<Url> parse(std::string_view text);

  /// Resolves `reference` against this base URL (RFC 3986 §5 subset:
  /// absolute, network-path, absolute-path and relative-path references).
  Url resolve(const Url& reference) const;

  /// scheme://host[:port] with the port omitted when it is the default.
  std::string origin() const;

  /// The effective port (explicit port, or the scheme default: 443 for
  /// https, 80 for http, 0 otherwise).
  std::uint16_t effective_port() const;

  /// True when both URLs share scheme, host and effective port.
  bool same_origin(const Url& other) const;

  bool is_absolute() const { return !scheme.empty(); }

  /// path + ('?' + query). The request-target used on the wire and as the
  /// cache key within an origin.
  std::string path_and_query() const;

  /// Appends path_and_query() to `out` without a temporary string.
  void append_path_and_query(std::string& out) const;

  /// Full serialization.
  std::string to_string() const;

  bool operator==(const Url& other) const = default;
};

/// Merges dot-segments per RFC 3986 §5.2.4 ("a/./b/../c" -> "a/c").
std::string remove_dot_segments(std::string_view path);

}  // namespace catalyst
