#include "http/h2/stream.h"

namespace catalyst::http::h2 {

std::uint32_t StreamTable::open_next() {
  if (next_own_id_ == 0) {
    next_own_id_ = is_client_ ? 1 : 2;
  } else {
    next_own_id_ += 2;
  }
  streams_[next_own_id_] = StreamState::Open;
  return next_own_id_;
}

bool StreamTable::reserve_pushed(std::uint32_t promised_id) {
  if (promised_id == 0 || promised_id % 2 != 0) return false;  // even only
  if (promised_id <= max_seen_even_) return false;             // must grow
  max_seen_even_ = promised_id;
  streams_[promised_id] = StreamState::ReservedRemote;
  return true;
}

void StreamTable::half_close_local(std::uint32_t id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) return;
  switch (it->second) {
    case StreamState::Open:
      it->second = StreamState::HalfClosedLocal;
      break;
    case StreamState::HalfClosedRemote:
      it->second = StreamState::Closed;
      break;
    default:
      break;
  }
}

void StreamTable::half_close_remote(std::uint32_t id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) return;
  switch (it->second) {
    case StreamState::Open:
      it->second = StreamState::HalfClosedRemote;
      break;
    case StreamState::ReservedRemote:
      // The pushed response completed.
      it->second = StreamState::Closed;
      break;
    case StreamState::HalfClosedLocal:
      it->second = StreamState::Closed;
      break;
    default:
      break;
  }
}

void StreamTable::close(std::uint32_t id) {
  auto it = streams_.find(id);
  if (it != streams_.end()) it->second = StreamState::Closed;
}

StreamState StreamTable::state(std::uint32_t id) const {
  const auto it = streams_.find(id);
  return it == streams_.end() ? StreamState::Idle : it->second;
}

std::size_t StreamTable::open_count() const {
  std::size_t n = 0;
  for (const auto& [id, state] : streams_) {
    if (state != StreamState::Closed && state != StreamState::Idle) ++n;
  }
  return n;
}

}  // namespace catalyst::http::h2
