#include "http/h2/stream.h"

namespace catalyst::http::h2 {

std::uint32_t StreamTable::open_next() {
  if (next_own_id_ == 0) {
    next_own_id_ = is_client_ ? 1 : 2;
  } else {
    next_own_id_ += 2;
  }
  streams_[next_own_id_] = StreamState::Open;
  return next_own_id_;
}

bool StreamTable::reserve_pushed(std::uint32_t promised_id) {
  if (promised_id == 0 || promised_id % 2 != 0) return false;  // even only
  if (promised_id <= max_seen_even_) return false;             // must grow
  max_seen_even_ = promised_id;
  streams_[promised_id] = StreamState::ReservedRemote;
  return true;
}

void StreamTable::half_close_local(std::uint32_t id) {
  StreamState* state = streams_.find(id);
  if (state == nullptr) return;
  switch (*state) {
    case StreamState::Open:
      *state = StreamState::HalfClosedLocal;
      break;
    case StreamState::HalfClosedRemote:
      *state = StreamState::Closed;
      break;
    default:
      break;
  }
}

void StreamTable::half_close_remote(std::uint32_t id) {
  StreamState* state = streams_.find(id);
  if (state == nullptr) return;
  switch (*state) {
    case StreamState::Open:
      *state = StreamState::HalfClosedRemote;
      break;
    case StreamState::ReservedRemote:
      // The pushed response completed.
      *state = StreamState::Closed;
      break;
    case StreamState::HalfClosedLocal:
      *state = StreamState::Closed;
      break;
    default:
      break;
  }
}

void StreamTable::close(std::uint32_t id) {
  if (StreamState* state = streams_.find(id)) *state = StreamState::Closed;
}

StreamState StreamTable::state(std::uint32_t id) const {
  const StreamState* state = streams_.find(id);
  return state == nullptr ? StreamState::Idle : *state;
}

std::size_t StreamTable::open_count() const {
  std::size_t n = 0;
  streams_.for_each([&n](std::uint32_t, StreamState state) {
    if (state != StreamState::Closed && state != StreamState::Idle) ++n;
  });
  return n;
}

}  // namespace catalyst::http::h2
