// HTTP/2 stream bookkeeping (RFC 9113 §5 subset).
//
// Tracks stream identifiers and state transitions for a single connection:
// client-initiated streams are odd, server-pushed streams are even, ids
// only grow. The netsim transport uses this to validate the push baseline's
// stream discipline.
#pragma once

#include <cstdint>
#include <optional>

#include "util/flat_hash.h"

namespace catalyst::http::h2 {

enum class StreamState {
  Idle,
  Open,
  ReservedRemote,  // promised via PUSH_PROMISE (client view)
  HalfClosedLocal,
  HalfClosedRemote,
  Closed,
};

/// Per-connection stream table for one endpoint.
class StreamTable {
 public:
  /// `is_client` decides which parity this endpoint may initiate.
  explicit StreamTable(bool is_client) : is_client_(is_client) {}

  /// Allocates the next stream id this endpoint may initiate (odd for
  /// clients, even for servers) and opens it.
  std::uint32_t open_next();

  /// Records a PUSH_PROMISE received for `promised_id` (client side).
  /// Returns false when the id has the wrong parity or does not grow.
  bool reserve_pushed(std::uint32_t promised_id);

  /// Transitions after sending/receiving END_STREAM.
  void half_close_local(std::uint32_t id);
  void half_close_remote(std::uint32_t id);

  /// Fully closes a stream (e.g. RST_STREAM).
  void close(std::uint32_t id);

  StreamState state(std::uint32_t id) const;

  std::size_t open_count() const;

 private:
  bool is_client_;
  std::uint32_t next_own_id_ = 0;      // lazily initialized on first open
  std::uint32_t max_seen_even_ = 0;
  // Per-request lookups dominate; stream-id order never matters (the
  // only iteration, open_count, just tallies states).
  catalyst::FlatHashMap<std::uint32_t, StreamState> streams_;
};

}  // namespace catalyst::http::h2
