// Simplified HTTP/2 framing (RFC 9113 subset).
//
// The Server-Push baseline needs PUSH_PROMISE semantics: the server
// announces a resource on an even stream before the client asks for it.
// We implement the binary frame layer (9-octet header + payload) with the
// frame types the simulation uses — enough to round-trip real bytes in
// tests and to account push overhead — while header compression is a
// simple length-preserving block instead of full HPACK.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace catalyst::http::h2 {

enum class FrameType : std::uint8_t {
  Data = 0x0,
  Headers = 0x1,
  RstStream = 0x3,
  Settings = 0x4,
  PushPromise = 0x5,
  Ping = 0x6,
  GoAway = 0x7,
  WindowUpdate = 0x8,
};

// Frame flags (meaning depends on type).
inline constexpr std::uint8_t kFlagEndStream = 0x1;
inline constexpr std::uint8_t kFlagEndHeaders = 0x4;
inline constexpr std::uint8_t kFlagAck = 0x1;

struct Frame {
  FrameType type = FrameType::Data;
  std::uint8_t flags = 0;
  std::uint32_t stream_id = 0;  // 31 bits
  std::string payload;

  bool end_stream() const { return flags & kFlagEndStream; }
  bool end_headers() const { return flags & kFlagEndHeaders; }

  /// Total wire size: 9-octet header + payload.
  std::size_t wire_size() const { return 9 + payload.size(); }
};

/// Serializes a frame to wire bytes.
std::string serialize_frame(const Frame& frame);

/// Incremental frame reader: feed bytes, poll frames.
class FrameReader {
 public:
  /// Appends bytes to the internal buffer.
  void feed(std::string_view data);

  /// Extracts the next complete frame, if any. Returns nullopt when more
  /// bytes are needed. Throws std::runtime_error on oversized frames
  /// (> 16 MiB, beyond any SETTINGS_MAX_FRAME_SIZE we would allow).
  std::optional<Frame> next();

  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// PUSH_PROMISE payload helpers: promised stream id + header block.
std::string encode_push_promise_payload(std::uint32_t promised_stream,
                                        std::string_view header_block);
std::optional<std::pair<std::uint32_t, std::string>>
decode_push_promise_payload(std::string_view payload);

/// Minimal header-block codec: length-prefixed name/value pairs. Stands in
/// for HPACK with a realistic-but-simple encoding whose size we account.
std::string encode_header_block(
    const std::vector<std::pair<std::string, std::string>>& fields);
std::optional<std::vector<std::pair<std::string, std::string>>>
decode_header_block(std::string_view block);

}  // namespace catalyst::http::h2
