#include "http/h2/frame.h"

#include <stdexcept>

namespace catalyst::http::h2 {

namespace {

constexpr std::size_t kMaxFrameSize = 16 * 1024 * 1024;

void append_u24(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>(v & 0xFF));
}

void append_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>(v & 0xFF));
}

std::uint32_t read_u32(const char* p) {
  return (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3]));
}

}  // namespace

std::string serialize_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFrameSize) {
    throw std::invalid_argument("h2: frame payload too large");
  }
  std::string out;
  out.reserve(frame.wire_size());
  append_u24(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(frame.flags));
  append_u32(out, frame.stream_id & 0x7FFFFFFFu);
  out.append(frame.payload);
  return out;
}

void FrameReader::feed(std::string_view data) { buffer_.append(data); }

std::optional<Frame> FrameReader::next() {
  if (buffer_.size() < 9) return std::nullopt;
  const auto* p = buffer_.data();
  const std::size_t length =
      (static_cast<std::size_t>(static_cast<std::uint8_t>(p[0])) << 16) |
      (static_cast<std::size_t>(static_cast<std::uint8_t>(p[1])) << 8) |
      static_cast<std::size_t>(static_cast<std::uint8_t>(p[2]));
  if (length > kMaxFrameSize) {
    throw std::runtime_error("h2: oversized frame");
  }
  if (buffer_.size() < 9 + length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<std::uint8_t>(p[3]));
  frame.flags = static_cast<std::uint8_t>(p[4]);
  frame.stream_id = read_u32(p + 5) & 0x7FFFFFFFu;
  frame.payload = buffer_.substr(9, length);
  buffer_.erase(0, 9 + length);
  return frame;
}

std::string encode_push_promise_payload(std::uint32_t promised_stream,
                                        std::string_view header_block) {
  std::string out;
  append_u32(out, promised_stream & 0x7FFFFFFFu);
  out.append(header_block);
  return out;
}

std::optional<std::pair<std::uint32_t, std::string>>
decode_push_promise_payload(std::string_view payload) {
  if (payload.size() < 4) return std::nullopt;
  const std::uint32_t promised = read_u32(payload.data()) & 0x7FFFFFFFu;
  return std::make_pair(promised, std::string(payload.substr(4)));
}

std::string encode_header_block(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string out;
  for (const auto& [name, value] : fields) {
    if (name.size() > 0xFFFF || value.size() > 0xFFFF) {
      throw std::invalid_argument("h2: header field too large");
    }
    out.push_back(static_cast<char>((name.size() >> 8) & 0xFF));
    out.push_back(static_cast<char>(name.size() & 0xFF));
    out.append(name);
    out.push_back(static_cast<char>((value.size() >> 8) & 0xFF));
    out.push_back(static_cast<char>(value.size() & 0xFF));
    out.append(value);
  }
  return out;
}

std::optional<std::vector<std::pair<std::string, std::string>>>
decode_header_block(std::string_view block) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  auto read_len = [&](std::size_t& len) {
    if (pos + 2 > block.size()) return false;
    len = (static_cast<std::size_t>(static_cast<std::uint8_t>(block[pos]))
           << 8) |
          static_cast<std::size_t>(static_cast<std::uint8_t>(block[pos + 1]));
    pos += 2;
    return true;
  };
  while (pos < block.size()) {
    std::size_t name_len = 0, value_len = 0;
    if (!read_len(name_len) || pos + name_len > block.size()) {
      return std::nullopt;
    }
    std::string name(block.substr(pos, name_len));
    pos += name_len;
    if (!read_len(value_len) || pos + value_len > block.size()) {
      return std::nullopt;
    }
    std::string value(block.substr(pos, value_len));
    pos += value_len;
    out.emplace_back(std::move(name), std::move(value));
  }
  return out;
}

}  // namespace catalyst::http::h2
