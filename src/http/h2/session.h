// HTTP/2 message codec: maps Request/Response objects onto real frame
// sequences (HEADERS + DATA, PUSH_PROMISE) and back.
//
// The netsim transport accounts h2 pushes with a closed-form byte cost;
// this codec grounds that accounting — tests verify that the modeled cost
// matches actual framed bytes — and provides the machinery a fully framed
// transport would use.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "http/h2/frame.h"
#include "http/message.h"

namespace catalyst::http::h2 {

class MessageCodec {
 public:
  /// Maximum DATA payload per frame (SETTINGS_MAX_FRAME_SIZE default).
  static constexpr std::size_t kMaxDataFrame = 16384;

  /// Encodes a request as HEADERS (+ DATA when a body is present) on
  /// `stream_id` (must be a client-initiated odd id).
  static std::vector<Frame> encode_request(const Request& request,
                                           std::uint32_t stream_id);

  /// Encodes a response as HEADERS + DATA frames on `stream_id`.
  static std::vector<Frame> encode_response(const Response& response,
                                            std::uint32_t stream_id);

  /// Encodes a server push: PUSH_PROMISE on `assoc_stream` announcing
  /// `promised_stream`, followed by the response frames on the promised
  /// stream.
  static std::vector<Frame> encode_push(const std::string& target,
                                        const Response& response,
                                        std::uint32_t assoc_stream,
                                        std::uint32_t promised_stream);

  /// Reassembles a request from its frames (HEADERS first). nullopt on
  /// malformed input or missing pseudo-headers.
  static std::optional<Request> decode_request(
      const std::vector<Frame>& frames);

  /// Reassembles a response from its frames.
  static std::optional<Response> decode_response(
      const std::vector<Frame>& frames);

  /// Total wire bytes of a frame sequence.
  static std::size_t wire_size(const std::vector<Frame>& frames);
};

}  // namespace catalyst::http::h2
