#include "http/h2/session.h"

#include "util/strings.h"

namespace catalyst::http::h2 {

namespace {

void append_body_frames(std::vector<Frame>& frames, const std::string& body,
                        std::uint32_t stream_id) {
  if (body.empty()) {
    // END_STREAM travelled on the HEADERS frame.
    return;
  }
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t take =
        std::min(MessageCodec::kMaxDataFrame, body.size() - pos);
    Frame data;
    data.type = FrameType::Data;
    data.stream_id = stream_id;
    data.payload = body.substr(pos, take);
    pos += take;
    if (pos == body.size()) data.flags |= kFlagEndStream;
    frames.push_back(std::move(data));
  }
}

std::vector<std::pair<std::string, std::string>> request_fields(
    const Request& request) {
  std::vector<std::pair<std::string, std::string>> fields;
  fields.emplace_back(":method", std::string(to_string(request.method)));
  fields.emplace_back(":path", request.target);
  fields.emplace_back(":scheme", "https");
  if (const auto host = request.headers.get(kHost)) {
    fields.emplace_back(":authority", std::string(*host));
  }
  for (const auto& field : request.headers.fields()) {
    if (iequals(field.name, kHost)) continue;  // carried as :authority
    fields.emplace_back(to_lower(field.name), field.value);
  }
  return fields;
}

}  // namespace

std::vector<Frame> MessageCodec::encode_request(const Request& request,
                                                std::uint32_t stream_id) {
  std::vector<Frame> frames;
  Frame headers;
  headers.type = FrameType::Headers;
  headers.stream_id = stream_id;
  headers.flags = kFlagEndHeaders;
  if (request.body.empty()) headers.flags |= kFlagEndStream;
  headers.payload = encode_header_block(request_fields(request));
  frames.push_back(std::move(headers));
  append_body_frames(frames, request.body, stream_id);
  return frames;
}

std::vector<Frame> MessageCodec::encode_response(const Response& response,
                                                 std::uint32_t stream_id) {
  std::vector<Frame> frames;
  std::vector<std::pair<std::string, std::string>> fields;
  fields.emplace_back(":status", std::to_string(code(response.status)));
  for (const auto& field : response.headers.fields()) {
    fields.emplace_back(to_lower(field.name), field.value);
  }
  Frame headers;
  headers.type = FrameType::Headers;
  headers.stream_id = stream_id;
  headers.flags = kFlagEndHeaders;
  if (response.body.empty()) headers.flags |= kFlagEndStream;
  headers.payload = encode_header_block(fields);
  frames.push_back(std::move(headers));
  append_body_frames(frames, response.body, stream_id);
  return frames;
}

std::vector<Frame> MessageCodec::encode_push(
    const std::string& target, const Response& response,
    std::uint32_t assoc_stream, std::uint32_t promised_stream) {
  std::vector<Frame> frames;
  Frame promise;
  promise.type = FrameType::PushPromise;
  promise.stream_id = assoc_stream;
  promise.flags = kFlagEndHeaders;
  promise.payload = encode_push_promise_payload(
      promised_stream,
      encode_header_block({{":method", "GET"}, {":path", target}}));
  frames.push_back(std::move(promise));
  auto response_frames = encode_response(response, promised_stream);
  frames.insert(frames.end(),
                std::make_move_iterator(response_frames.begin()),
                std::make_move_iterator(response_frames.end()));
  return frames;
}

namespace {

struct Reassembled {
  std::vector<std::pair<std::string, std::string>> fields;
  std::string body;
};

std::optional<Reassembled> reassemble(const std::vector<Frame>& frames) {
  if (frames.empty() || frames.front().type != FrameType::Headers) {
    return std::nullopt;
  }
  Reassembled out;
  const auto fields = decode_header_block(frames.front().payload);
  if (!fields) return std::nullopt;
  out.fields = *fields;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    if (frames[i].type != FrameType::Data) return std::nullopt;
    if (frames[i].stream_id != frames.front().stream_id) {
      return std::nullopt;
    }
    out.body += frames[i].payload;
  }
  return out;
}

}  // namespace

std::optional<Request> MessageCodec::decode_request(
    const std::vector<Frame>& frames) {
  const auto reassembled = reassemble(frames);
  if (!reassembled) return std::nullopt;
  Request request;
  bool saw_method = false, saw_path = false;
  for (const auto& [name, value] : reassembled->fields) {
    if (name == ":method") {
      const auto method = parse_method(value);
      if (!method) return std::nullopt;
      request.method = *method;
      saw_method = true;
    } else if (name == ":path") {
      request.target = value;
      saw_path = true;
    } else if (name == ":authority") {
      request.headers.set(kHost, value);
    } else if (name == ":scheme") {
      // not represented in Request
    } else {
      request.headers.add(name, value);
    }
  }
  if (!saw_method || !saw_path) return std::nullopt;
  request.body = reassembled->body;
  return request;
}

std::optional<Response> MessageCodec::decode_response(
    const std::vector<Frame>& frames) {
  const auto reassembled = reassemble(frames);
  if (!reassembled) return std::nullopt;
  Response response;
  bool saw_status = false;
  for (const auto& [name, value] : reassembled->fields) {
    if (name == ":status") {
      std::uint64_t status_code = 0;
      if (!parse_u64(value, status_code)) return std::nullopt;
      response.status = static_cast<Status>(status_code);
      saw_status = true;
    } else {
      response.headers.add(name, value);
    }
  }
  if (!saw_status) return std::nullopt;
  response.body = reassembled->body;
  return response;
}

std::size_t MessageCodec::wire_size(const std::vector<Frame>& frames) {
  std::size_t total = 0;
  for (const Frame& frame : frames) total += frame.wire_size();
  return total;
}

}  // namespace catalyst::http::h2
