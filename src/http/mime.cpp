#include "http/mime.h"

#include "util/strings.h"

namespace catalyst::http {

std::string_view mime_type(ResourceClass rc) {
  switch (rc) {
    case ResourceClass::Html:
      return "text/html; charset=utf-8";
    case ResourceClass::Css:
      return "text/css";
    case ResourceClass::Script:
      return "application/javascript";
    case ResourceClass::Image:
      return "image/webp";
    case ResourceClass::Font:
      return "font/woff2";
    case ResourceClass::Json:
      return "application/json";
    case ResourceClass::Other:
      return "application/octet-stream";
  }
  return "application/octet-stream";
}

ResourceClass classify_mime(std::string_view content_type) {
  // Strip parameters ("; charset=...").
  if (const auto semi = content_type.find(';');
      semi != std::string_view::npos) {
    content_type = content_type.substr(0, semi);
  }
  content_type = trim(content_type);
  if (iequals(content_type, "text/html")) return ResourceClass::Html;
  if (iequals(content_type, "text/css")) return ResourceClass::Css;
  if (iequals(content_type, "application/javascript") ||
      iequals(content_type, "text/javascript")) {
    return ResourceClass::Script;
  }
  if (istarts_with(content_type, "image/")) return ResourceClass::Image;
  if (istarts_with(content_type, "font/")) return ResourceClass::Font;
  if (iequals(content_type, "application/json")) return ResourceClass::Json;
  return ResourceClass::Other;
}

ResourceClass classify_path(std::string_view path) {
  // Ignore any query string.
  if (const auto q = path.find('?'); q != std::string_view::npos) {
    path = path.substr(0, q);
  }
  if (ends_with(path, ".html") || ends_with(path, ".htm") || path == "/" ||
      ends_with(path, "/")) {
    return ResourceClass::Html;
  }
  if (ends_with(path, ".css")) return ResourceClass::Css;
  if (ends_with(path, ".js") || ends_with(path, ".mjs")) {
    return ResourceClass::Script;
  }
  if (ends_with(path, ".png") || ends_with(path, ".jpg") ||
      ends_with(path, ".jpeg") || ends_with(path, ".gif") ||
      ends_with(path, ".webp") || ends_with(path, ".svg") ||
      ends_with(path, ".ico")) {
    return ResourceClass::Image;
  }
  if (ends_with(path, ".woff") || ends_with(path, ".woff2") ||
      ends_with(path, ".ttf")) {
    return ResourceClass::Font;
  }
  if (ends_with(path, ".json")) return ResourceClass::Json;
  return ResourceClass::Other;
}

std::string_view class_label(ResourceClass rc) {
  switch (rc) {
    case ResourceClass::Html:
      return "html";
    case ResourceClass::Css:
      return "css";
    case ResourceClass::Script:
      return "js";
    case ResourceClass::Image:
      return "img";
    case ResourceClass::Font:
      return "font";
    case ResourceClass::Json:
      return "json";
    case ResourceClass::Other:
      return "other";
  }
  return "other";
}

}  // namespace catalyst::http
