// HTTP status codes used by the simulation (RFC 9110 §15).
#pragma once

#include <string_view>

namespace catalyst::http {

enum class Status : int {
  Ok = 200,
  NoContent = 204,
  MovedPermanently = 301,
  Found = 302,
  NotModified = 304,
  BadRequest = 400,
  Forbidden = 403,
  NotFound = 404,
  Gone = 410,
  PreconditionFailed = 412,
  InternalServerError = 500,
  BadGateway = 502,
  ServiceUnavailable = 503,
  GatewayTimeout = 504,
};

constexpr int code(Status s) { return static_cast<int>(s); }

std::string_view reason_phrase(Status s);

/// True for 2xx.
constexpr bool is_success(Status s) {
  return code(s) >= 200 && code(s) < 300;
}

/// Heuristically cacheable status codes per RFC 9111 §3.
constexpr bool is_cacheable_status(Status s) {
  switch (s) {
    case Status::Ok:
    case Status::NoContent:
    case Status::MovedPermanently:
    case Status::NotFound:
    case Status::Gone:
      return true;
    default:
      return false;
  }
}

}  // namespace catalyst::http
