// Entity tags and If-None-Match evaluation (RFC 9110 §8.8.3, §13.1.2).
//
// ETags are the validation tokens at the heart of the paper: the status-quo
// path compares them on the server (costing an RTT), CacheCatalyst ships
// them ahead in X-Etag-Config so the comparison happens on the client.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace catalyst::http {

/// A parsed entity tag: opaque value plus weakness flag.
struct Etag {
  std::string value;  // opaque contents, without quotes or W/ prefix
  bool weak = false;

  /// Serializes to the wire form: `"value"` or `W/"value"`.
  std::string to_string() const;

  /// Parses a wire-form entity tag. Returns nullopt for malformed input
  /// (missing quotes, embedded quotes, ...).
  static std::optional<Etag> parse(std::string_view text);

  /// Strong comparison (RFC 9110 §8.8.3.2): equal values, both strong.
  bool strong_equals(const Etag& other) const {
    return !weak && !other.weak && value == other.value;
  }

  /// Weak comparison: equal values, weakness ignored.
  bool weak_equals(const Etag& other) const { return value == other.value; }

  bool operator==(const Etag& other) const = default;
};

/// Parsed If-None-Match field: either "*" or a list of entity tags.
struct IfNoneMatch {
  bool any = false;  // "*"
  std::vector<Etag> tags;

  static std::optional<IfNoneMatch> parse(std::string_view text);

  /// RFC 9110 §13.1.2: If-None-Match matching uses *weak* comparison.
  /// True when the condition fails (i.e. the representation matches and a
  /// 304 should be returned for GET/HEAD).
  bool matches(const Etag& current) const;
};

/// Builds a strong content-derived entity tag ("<hex-sha1-prefix>").
Etag make_content_etag(std::string_view content);

}  // namespace catalyst::http
