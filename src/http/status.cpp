#include "http/status.h"

namespace catalyst::http {

std::string_view reason_phrase(Status s) {
  switch (s) {
    case Status::Ok:
      return "OK";
    case Status::NoContent:
      return "No Content";
    case Status::MovedPermanently:
      return "Moved Permanently";
    case Status::Found:
      return "Found";
    case Status::NotModified:
      return "Not Modified";
    case Status::BadRequest:
      return "Bad Request";
    case Status::Forbidden:
      return "Forbidden";
    case Status::NotFound:
      return "Not Found";
    case Status::Gone:
      return "Gone";
    case Status::PreconditionFailed:
      return "Precondition Failed";
    case Status::InternalServerError:
      return "Internal Server Error";
    case Status::BadGateway:
      return "Bad Gateway";
    case Status::ServiceUnavailable:
      return "Service Unavailable";
    case Status::GatewayTimeout:
      return "Gateway Timeout";
  }
  return "Unknown";
}

}  // namespace catalyst::http
