// The X-Etag-Config header (the paper's wire protocol, §3).
//
// A JSON object mapping same-origin resource paths to their current entity
// tags, attached to base-HTML responses. The Service Worker decodes it and
// serves matching cached resources without any network round trip.
//
// Storage: entries sit in a vector sorted by path — encode() must emit
// keys in sorted order, byte-identically to the std::map implementation —
// with an interned-key FlatHashMap index backing find(), the per-resource
// lookup every Service Worker serve performs. Sorting is lazy: adds
// append, the first sorted read pays one sort.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/etag.h"
#include "util/flat_hash.h"
#include "util/intern.h"
#include "util/types.h"

namespace catalyst::http {

class EtagConfig {
 public:
  /// One path → ETag binding. Named members (not std::pair) so existing
  /// `for (const auto& [path, etag] : config.entries())` keeps compiling.
  struct Entry {
    std::string path;
    Etag etag;
  };

  EtagConfig() = default;

  void add(std::string path, Etag etag);

  /// ETag for a path, if the map covers it.
  std::optional<Etag> find(std::string_view path) const;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Entries sorted by path (the encode()/wire order).
  const std::vector<Entry>& entries() const {
    ensure_sorted();
    return entries_;
  }

  /// Serializes to the header value (compact JSON object
  /// {"/a.css":"W/\"abc\"", ...}).
  std::string encode() const;

  /// Parses a header value. nullopt on malformed JSON or non-string
  /// values; entries with malformed ETags are dropped (robustness
  /// principle — one bad entry must not disable the whole map).
  static std::optional<EtagConfig> parse(std::string_view header_value);

  /// Wire overhead this map adds to a response (header name + value).
  ByteCount header_wire_size() const;

 private:
  void ensure_sorted() const;

  // Sorted by path once ensure_sorted() ran; appended unsorted by add().
  // mutable: sorting is a cache-consistency detail of the accessors.
  mutable std::vector<Entry> entries_;
  mutable FlatHashMap<InternId, std::uint32_t> index_;
  mutable bool sorted_ = true;
};

}  // namespace catalyst::http
