// The X-Etag-Config header (the paper's wire protocol, §3).
//
// A JSON object mapping same-origin resource paths to their current entity
// tags, attached to base-HTML responses. The Service Worker decodes it and
// serves matching cached resources without any network round trip.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "http/etag.h"
#include "util/types.h"

namespace catalyst::http {

class EtagConfig {
 public:
  EtagConfig() = default;

  void add(std::string path, Etag etag);

  /// ETag for a path, if the map covers it.
  std::optional<Etag> find(std::string_view path) const;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::map<std::string, Etag>& entries() const { return entries_; }

  /// Serializes to the header value (compact JSON object
  /// {"/a.css":"W/\"abc\"", ...}).
  std::string encode() const;

  /// Parses a header value. nullopt on malformed JSON or non-string
  /// values; entries with malformed ETags are dropped (robustness
  /// principle — one bad entry must not disable the whole map).
  static std::optional<EtagConfig> parse(std::string_view header_value);

  /// Wire overhead this map adds to a response (header name + value).
  ByteCount header_wire_size() const;

 private:
  std::map<std::string, Etag> entries_;
};

}  // namespace catalyst::http
