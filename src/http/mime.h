// Content types for the resource classes that make up a web page.
#pragma once

#include <string_view>

namespace catalyst::http {

/// Resource classes the workload generator and the browser distinguish.
enum class ResourceClass {
  Html,
  Css,
  Script,
  Image,
  Font,
  Json,   // XHR/fetch payloads
  Other,
};

/// Canonical MIME type for a resource class.
std::string_view mime_type(ResourceClass rc);

/// Infers the resource class from a Content-Type value (parameters
/// ignored); Other when unrecognized.
ResourceClass classify_mime(std::string_view content_type);

/// Infers the resource class from a path extension (".css", ".js", ...).
ResourceClass classify_path(std::string_view path);

/// Short human label ("css", "js", ...), used in traces and tables.
std::string_view class_label(ResourceClass rc);

}  // namespace catalyst::http
