#include "http/etag_config.h"

#include "http/headers.h"
#include "util/json.h"

namespace catalyst::http {

void EtagConfig::add(std::string path, Etag etag) {
  entries_[std::move(path)] = std::move(etag);
}

std::optional<Etag> EtagConfig::find(std::string_view path) const {
  const auto it = entries_.find(std::string(path));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string EtagConfig::encode() const {
  Json object = Json::object();
  for (const auto& [path, etag] : entries_) {
    object.set(path, Json::string(etag.to_string()));
  }
  return object.dump();
}

std::optional<EtagConfig> EtagConfig::parse(std::string_view header_value) {
  const auto json = Json::parse(header_value);
  if (!json || !json->is_object()) return std::nullopt;
  EtagConfig config;
  for (const auto& [path, value] : json->as_object()) {
    if (!value.is_string()) return std::nullopt;
    if (auto etag = Etag::parse(value.as_string())) {
      config.add(path, std::move(*etag));
    }
  }
  return config;
}

ByteCount EtagConfig::header_wire_size() const {
  return kXEtagConfig.size() + 2 + encode().size() + 2;
}

}  // namespace catalyst::http
