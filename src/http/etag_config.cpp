#include "http/etag_config.h"

#include <algorithm>

#include "http/headers.h"
#include "util/json.h"

namespace catalyst::http {

void EtagConfig::add(std::string path, Etag etag) {
  const InternId id = tls_intern().intern(path);
  if (const std::uint32_t* pos = index_.find(id)) {
    entries_[*pos].etag = std::move(etag);
    return;
  }
  if (!entries_.empty() && path < entries_.back().path) sorted_ = false;
  index_.insert_or_assign(id, static_cast<std::uint32_t>(entries_.size()));
  entries_.push_back(Entry{std::move(path), std::move(etag)});
}

void EtagConfig::ensure_sorted() const {
  if (sorted_) return;
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.path < b.path; });
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    index_.insert_or_assign(tls_intern().intern(entries_[i].path), i);
  }
  sorted_ = true;
}

std::optional<Etag> EtagConfig::find(std::string_view path) const {
  const InternId id = tls_intern().find(path);
  if (id == kNoIntern) return std::nullopt;
  const std::uint32_t* pos = index_.find(id);
  if (pos == nullptr) return std::nullopt;
  return entries_[*pos].etag;
}

std::string EtagConfig::encode() const {
  ensure_sorted();
  Json object = Json::object();
  for (const Entry& entry : entries_) {
    object.set(entry.path, Json::string(entry.etag.to_string()));
  }
  return object.dump();
}

std::optional<EtagConfig> EtagConfig::parse(std::string_view header_value) {
  const auto json = Json::parse(header_value);
  if (!json || !json->is_object()) return std::nullopt;
  EtagConfig config;
  for (const auto& [path, value] : json->as_object()) {
    if (!value.is_string()) return std::nullopt;
    if (auto etag = Etag::parse(value.as_string())) {
      config.add(path, std::move(*etag));
    }
  }
  return config;
}

ByteCount EtagConfig::header_wire_size() const {
  return kXEtagConfig.size() + 2 + encode().size() + 2;
}

}  // namespace catalyst::http
