// Cache-Control directive parsing and construction (RFC 9111 §5.2).
//
// The paper's motivation rests on how developers set (or fail to set) these
// directives: no-store, no-cache, max-age with conservative TTLs. The
// workload layer synthesizes realistic directive mixes and the browser
// cache interprets them here.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/types.h"

namespace catalyst::http {

struct CacheControl {
  bool no_store = false;
  bool no_cache = false;
  bool must_revalidate = false;
  bool immutable = false;
  bool is_public = false;
  bool is_private = false;
  std::optional<Duration> max_age;

  /// Parses a Cache-Control field value. Unknown directives are ignored
  /// (per RFC 9111 §5.2.3); malformed max-age values drop the directive.
  static CacheControl parse(std::string_view text);

  /// Serializes the set directives back to a field value.
  std::string to_string() const;

  // Common policies used by the server's TTL assignment models.
  static CacheControl store_forever();      // public, max-age=1y, immutable
  static CacheControl with_max_age(Duration ttl);
  static CacheControl revalidate_always();  // no-cache
  static CacheControl never_store();        // no-store

  bool operator==(const CacheControl&) const = default;
};

}  // namespace catalyst::http
