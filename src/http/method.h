// HTTP request methods (RFC 9110 §9). The simulator only issues safe
// methods, but the message layer models the full set.
#pragma once

#include <optional>
#include <string_view>

namespace catalyst::http {

enum class Method { Get, Head, Post, Put, Delete, Options, Trace, Connect };

constexpr std::string_view to_string(Method m) {
  switch (m) {
    case Method::Get:
      return "GET";
    case Method::Head:
      return "HEAD";
    case Method::Post:
      return "POST";
    case Method::Put:
      return "PUT";
    case Method::Delete:
      return "DELETE";
    case Method::Options:
      return "OPTIONS";
    case Method::Trace:
      return "TRACE";
    case Method::Connect:
      return "CONNECT";
  }
  return "GET";
}

constexpr std::optional<Method> parse_method(std::string_view s) {
  if (s == "GET") return Method::Get;
  if (s == "HEAD") return Method::Head;
  if (s == "POST") return Method::Post;
  if (s == "PUT") return Method::Put;
  if (s == "DELETE") return Method::Delete;
  if (s == "OPTIONS") return Method::Options;
  if (s == "TRACE") return Method::Trace;
  if (s == "CONNECT") return Method::Connect;
  return std::nullopt;
}

}  // namespace catalyst::http
