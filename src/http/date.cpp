#include "http/date.h"

#include <array>
#include <cstdio>

#include "util/strings.h"

namespace catalyst::http {

namespace {

constexpr std::array<std::string_view, 7> kDays = {
    "Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"};
constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

constexpr bool is_leap(std::int64_t y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

constexpr std::array<int, 12> kMonthDays = {31, 28, 31, 30, 31, 30,
                                            31, 31, 30, 31, 30, 31};

struct CivilDate {
  std::int64_t year;
  int month;  // 1..12
  int day;    // 1..31
  int weekday;  // 0 = Sunday
  int hour, minute, second;
};

CivilDate civil_from_unix(std::int64_t unix_seconds) {
  std::int64_t days = unix_seconds / 86400;
  std::int64_t rem = unix_seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  CivilDate out{};
  out.hour = static_cast<int>(rem / 3600);
  out.minute = static_cast<int>((rem % 3600) / 60);
  out.second = static_cast<int>(rem % 60);
  out.weekday = static_cast<int>(((days % 7) + 7 + 4) % 7);  // 1970-01-01 Thu
  std::int64_t year = 1970;
  while (true) {
    const std::int64_t len = is_leap(year) ? 366 : 365;
    if (days >= len) {
      days -= len;
      ++year;
    } else {
      break;
    }
  }
  out.year = year;
  int month = 0;
  while (true) {
    int len = kMonthDays[static_cast<std::size_t>(month)];
    if (month == 1 && is_leap(year)) len = 29;
    if (days >= len) {
      days -= len;
      ++month;
    } else {
      break;
    }
  }
  out.month = month + 1;
  out.day = static_cast<int>(days) + 1;
  return out;
}

std::optional<std::int64_t> unix_from_civil(std::int64_t year, int month,
                                            int day, int hour, int minute,
                                            int second) {
  if (year < 1970 || month < 1 || month > 12 || day < 1 || hour > 23 ||
      minute > 59 || second > 60) {
    return std::nullopt;
  }
  std::int64_t days = 0;
  for (std::int64_t y = 1970; y < year; ++y) days += is_leap(y) ? 366 : 365;
  for (int m = 0; m < month - 1; ++m) {
    days += kMonthDays[static_cast<std::size_t>(m)];
    if (m == 1 && is_leap(year)) ++days;
  }
  int month_len = kMonthDays[static_cast<std::size_t>(month - 1)];
  if (month == 2 && is_leap(year)) month_len = 29;
  if (day > month_len) return std::nullopt;
  days += day - 1;
  return days * 86400 + hour * 3600 + minute * 60 + second;
}

int month_index(std::string_view name) {
  for (int i = 0; i < 12; ++i) {
    if (name == kMonths[static_cast<std::size_t>(i)]) return i + 1;
  }
  return 0;
}

}  // namespace

std::string format_http_date(TimePoint t) {
  const std::int64_t unix_seconds =
      kEpochUnixSeconds +
      std::chrono::duration_cast<std::chrono::seconds>(t.since_epoch())
          .count();
  const CivilDate c = civil_from_unix(unix_seconds);
  return str_format(
      "%.*s, %02d %.*s %04lld %02d:%02d:%02d GMT",
      3, kDays[static_cast<std::size_t>(c.weekday)].data(), c.day, 3,
      kMonths[static_cast<std::size_t>(c.month - 1)].data(),
      static_cast<long long>(c.year), c.hour, c.minute, c.second);
}

std::optional<TimePoint> parse_http_date(std::string_view text) {
  // "Thu, 01 Jan 2026 00:00:00 GMT" — fixed widths.
  text = trim(text);
  if (text.size() != 29) return std::nullopt;
  if (text.substr(3, 2) != ", " || text.substr(25) != " GMT") {
    return std::nullopt;
  }
  std::uint64_t day = 0, year = 0, hour = 0, minute = 0, second = 0;
  if (!parse_u64(text.substr(5, 2), day) ||
      !parse_u64(text.substr(12, 4), year) ||
      !parse_u64(text.substr(17, 2), hour) ||
      !parse_u64(text.substr(20, 2), minute) ||
      !parse_u64(text.substr(23, 2), second)) {
    return std::nullopt;
  }
  const int month = month_index(text.substr(8, 3));
  if (month == 0) return std::nullopt;
  if (text[11] != ' ' || text[16] != ' ' || text[19] != ':' ||
      text[22] != ':') {
    return std::nullopt;
  }
  const auto unix_seconds = unix_from_civil(
      static_cast<std::int64_t>(year), month, static_cast<int>(day),
      static_cast<int>(hour), static_cast<int>(minute),
      static_cast<int>(second));
  if (!unix_seconds) return std::nullopt;
  return TimePoint{seconds(*unix_seconds - kEpochUnixSeconds)};
}

}  // namespace catalyst::http
