#include "http/cache_control.h"

#include <vector>

#include "util/strings.h"

namespace catalyst::http {

CacheControl CacheControl::parse(std::string_view text) {
  CacheControl cc;
  for (std::string_view piece : split(text, ',')) {
    piece = trim(piece);
    if (piece.empty()) continue;
    std::string_view name = piece;
    std::string_view arg;
    if (const auto eq = piece.find('='); eq != std::string_view::npos) {
      name = trim(piece.substr(0, eq));
      arg = trim(piece.substr(eq + 1));
      // Argument may be a quoted string.
      if (arg.size() >= 2 && arg.front() == '"' && arg.back() == '"') {
        arg = arg.substr(1, arg.size() - 2);
      }
    }
    if (iequals(name, "no-store")) {
      cc.no_store = true;
    } else if (iequals(name, "no-cache")) {
      cc.no_cache = true;
    } else if (iequals(name, "must-revalidate")) {
      cc.must_revalidate = true;
    } else if (iequals(name, "immutable")) {
      cc.immutable = true;
    } else if (iequals(name, "public")) {
      cc.is_public = true;
    } else if (iequals(name, "private")) {
      cc.is_private = true;
    } else if (iequals(name, "max-age")) {
      std::uint64_t secs = 0;
      if (parse_u64(arg, secs)) {
        cc.max_age = seconds(static_cast<std::int64_t>(
            std::min<std::uint64_t>(secs, 10u * 365 * 24 * 3600)));
      }
    }
    // Unknown directives are ignored.
  }
  return cc;
}

std::string CacheControl::to_string() const {
  std::vector<std::string> parts;
  if (no_store) parts.emplace_back("no-store");
  if (no_cache) parts.emplace_back("no-cache");
  if (is_public) parts.emplace_back("public");
  if (is_private) parts.emplace_back("private");
  if (max_age) {
    parts.push_back(
        "max-age=" +
        std::to_string(
            std::chrono::duration_cast<std::chrono::seconds>(*max_age)
                .count()));
  }
  if (must_revalidate) parts.emplace_back("must-revalidate");
  if (immutable) parts.emplace_back("immutable");
  return join(parts, ", ");
}

CacheControl CacheControl::store_forever() {
  CacheControl cc;
  cc.is_public = true;
  cc.max_age = days(365);
  cc.immutable = true;
  return cc;
}

CacheControl CacheControl::with_max_age(Duration ttl) {
  CacheControl cc;
  cc.max_age = ttl;
  return cc;
}

CacheControl CacheControl::revalidate_always() {
  CacheControl cc;
  cc.no_cache = true;
  return cc;
}

CacheControl CacheControl::never_store() {
  CacheControl cc;
  cc.no_store = true;
  return cc;
}

}  // namespace catalyst::http
