#include "http/conditional.h"

#include "http/date.h"
#include "util/strings.h"

namespace catalyst::http {

ConditionalOutcome evaluate_conditional(
    const Request& request, const Etag& current_etag,
    std::optional<TimePoint> last_modified) {
  // If-None-Match takes precedence over If-Modified-Since (RFC 9110
  // §13.2.2).
  if (request.headers.contains(kIfNoneMatch)) {
    const auto inm = request.if_none_match();
    if (!inm) return ConditionalOutcome::Modified;  // malformed: play safe
    return inm->matches(current_etag) ? ConditionalOutcome::NotModified
                                      : ConditionalOutcome::Modified;
  }
  if (const auto ims = request.headers.get(kIfModifiedSince)) {
    const auto since = parse_http_date(*ims);
    if (since && last_modified && *last_modified <= *since) {
      return ConditionalOutcome::NotModified;
    }
    return ConditionalOutcome::Modified;
  }
  return ConditionalOutcome::NotConditional;
}

Response make_not_modified(const Etag& current_etag,
                           const Headers& cache_headers) {
  Response resp = Response::make(Status::NotModified);
  resp.headers.set(kEtagHeader, current_etag.to_string());
  // Propagate headers a cache must update on revalidation.
  for (const auto& field : cache_headers.fields()) {
    if (iequals(field.name, kCacheControl) ||
        iequals(field.name, kExpires) ||
        iequals(field.name, kLastModified)) {
      resp.headers.set(field.name, field.value);
    }
  }
  return resp;
}

}  // namespace catalyst::http
