#include "http/headers.h"

#include "util/strings.h"

namespace catalyst::http {

void Headers::add(std::string_view name, std::string_view value) {
  fields_.push_back(Field{std::string(name), std::string(value)});
}

void Headers::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

std::size_t Headers::remove(std::string_view name) {
  const std::size_t before = fields_.size();
  std::erase_if(fields_,
                [name](const Field& f) { return iequals(f.name, name); });
  return before - fields_.size();
}

std::optional<std::string_view> Headers::get(std::string_view name) const {
  for (const Field& f : fields_) {
    if (iequals(f.name, name)) return std::string_view(f.value);
  }
  return std::nullopt;
}

std::vector<std::string_view> Headers::get_all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const Field& f : fields_) {
    if (iequals(f.name, name)) out.emplace_back(f.value);
  }
  return out;
}

bool Headers::contains(std::string_view name) const {
  return get(name).has_value();
}

ByteCount Headers::wire_size() const {
  ByteCount total = 0;
  for (const Field& f : fields_) {
    total += f.name.size() + 2 /* ": " */ + f.value.size() + 2 /* CRLF */;
  }
  return total;
}

bool Headers::operator==(const Headers& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (!iequals(fields_[i].name, other.fields_[i].name) ||
        fields_[i].value != other.fields_[i].value) {
      return false;
    }
  }
  return true;
}

}  // namespace catalyst::http
