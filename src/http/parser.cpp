#include "http/parser.h"

#include "util/strings.h"

namespace catalyst::http {

namespace detail {

ParseResult MessageFramer::feed(std::string_view data) {
  if (state_ == State::Error) return ParseResult::Error;
  if (state_ == State::Done) {
    if (!data.empty()) state_ = State::Error;  // trailing bytes
    return state_ == State::Done ? ParseResult::Done : ParseResult::Error;
  }
  buffer_.append(data);
  if (state_ == State::Head) {
    const ParseResult r = parse_head();
    if (r != ParseResult::Done) return r;  // NeedMore or Error
    bool chunked = false;
    if (const auto te = headers_.get("Transfer-Encoding")) {
      if (iequals(trim(*te), "chunked")) {
        chunked = true;
      } else {
        state_ = State::Error;  // unsupported coding
        return ParseResult::Error;
      }
    }
    state_ = chunked ? State::ChunkSize : State::Body;
  }
  if (state_ == State::Body) return consume_body();
  return consume_chunked();
}

ParseResult MessageFramer::consume_body() {
  // Move up to body_expected_ bytes from buffer_ into body_.
  const std::size_t take = std::min(buffer_.size(), body_expected_);
  body_.append(buffer_, 0, take);
  buffer_.erase(0, take);
  body_expected_ -= take;
  if (body_expected_ > 0) return ParseResult::NeedMore;
  if (!buffer_.empty()) {
    state_ = State::Error;  // bytes beyond Content-Length
    return ParseResult::Error;
  }
  state_ = State::Done;
  return ParseResult::Done;
}

ParseResult MessageFramer::consume_chunked() {
  while (true) {
    switch (state_) {
      case State::ChunkSize: {
        const auto eol = buffer_.find("\r\n");
        if (eol == std::string::npos) {
          if (buffer_.size() > 18) {  // longer than any sane hex size
            state_ = State::Error;
            return ParseResult::Error;
          }
          return ParseResult::NeedMore;
        }
        // Parse the hex chunk size (chunk extensions are rejected).
        std::size_t size = 0;
        bool any = false;
        for (char c : std::string_view(buffer_).substr(0, eol)) {
          int digit;
          if (ascii_isdigit(c)) {
            digit = c - '0';
          } else if (c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
          } else if (c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
          } else {
            state_ = State::Error;
            return ParseResult::Error;
          }
          if (size > (std::size_t(1) << 40)) {
            state_ = State::Error;
            return ParseResult::Error;
          }
          size = size * 16 + static_cast<std::size_t>(digit);
          any = true;
        }
        if (!any) {
          state_ = State::Error;
          return ParseResult::Error;
        }
        buffer_.erase(0, eol + 2);
        body_expected_ = size;
        state_ = (size == 0) ? State::ChunkLast : State::ChunkData;
        break;
      }
      case State::ChunkData: {
        const std::size_t take = std::min(buffer_.size(), body_expected_);
        body_.append(buffer_, 0, take);
        buffer_.erase(0, take);
        body_expected_ -= take;
        if (body_expected_ > 0) return ParseResult::NeedMore;
        state_ = State::ChunkEnd;
        break;
      }
      case State::ChunkEnd: {
        if (buffer_.size() < 2) return ParseResult::NeedMore;
        if (buffer_.substr(0, 2) != "\r\n") {
          state_ = State::Error;
          return ParseResult::Error;
        }
        buffer_.erase(0, 2);
        state_ = State::ChunkSize;
        break;
      }
      case State::ChunkLast: {
        // No trailer fields supported: expect the final CRLF.
        if (buffer_.size() < 2) return ParseResult::NeedMore;
        if (buffer_.substr(0, 2) != "\r\n" || buffer_.size() > 2) {
          state_ = State::Error;
          return ParseResult::Error;
        }
        buffer_.clear();
        state_ = State::Done;
        return ParseResult::Done;
      }
      default:
        state_ = State::Error;
        return ParseResult::Error;
    }
  }
}

ParseResult MessageFramer::parse_head() {
  const auto head_end = buffer_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    // Guard against unbounded garbage without a head terminator.
    if (buffer_.size() > 256 * 1024) {
      state_ = State::Error;
      return ParseResult::Error;
    }
    return ParseResult::NeedMore;
  }
  const std::string head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + 4);

  std::size_t pos = 0;
  bool first = true;
  while (pos < head.size() || first) {
    auto eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string_view line = std::string_view(head).substr(pos, eol - pos);
    pos = eol + 2;
    if (first) {
      if (line.empty()) {
        state_ = State::Error;
        return ParseResult::Error;
      }
      start_line_ = std::string(line);
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      state_ = State::Error;
      return ParseResult::Error;
    }
    const std::string_view name = line.substr(0, colon);
    // Field names must not contain whitespace (RFC 9112 §5.1).
    for (char c : name) {
      if (ascii_isspace(c)) {
        state_ = State::Error;
        return ParseResult::Error;
      }
    }
    headers_.add(name, trim(line.substr(colon + 1)));
  }

  std::uint64_t length = 0;
  if (const auto cl = headers_.get(kContentLength)) {
    if (!parse_u64(trim(*cl), length)) {
      state_ = State::Error;
      return ParseResult::Error;
    }
  }
  body_expected_ = length;
  return ParseResult::Done;
}

void MessageFramer::reset() {
  state_ = State::Head;
  buffer_.clear();
  start_line_.clear();
  headers_ = Headers{};
  body_.clear();
  body_expected_ = 0;
}

}  // namespace detail

ParseResult RequestParser::feed(std::string_view data) {
  const ParseResult r = framer_.feed(data);
  done_ = (r == ParseResult::Done);
  return r;
}

Request RequestParser::take() {
  Request req;
  const std::string& line = framer_.start_line();
  const auto pieces = split(line, ' ');
  if (pieces.size() == 3) {
    if (const auto m = parse_method(pieces[0])) req.method = *m;
    req.target = std::string(pieces[1]);
  }
  req.headers = framer_.headers();
  req.body = framer_.take_body();
  framer_.reset();
  done_ = false;
  return req;
}

void RequestParser::reset() {
  framer_.reset();
  done_ = false;
}

ParseResult ResponseParser::feed(std::string_view data) {
  const ParseResult r = framer_.feed(data);
  done_ = (r == ParseResult::Done);
  return r;
}

Response ResponseParser::take() {
  Response resp;
  const std::string& line = framer_.start_line();
  const auto pieces = split(line, ' ');
  if (pieces.size() >= 2) {
    std::uint64_t status_code = 0;
    if (parse_u64(pieces[1], status_code)) {
      resp.status = static_cast<Status>(status_code);
    }
  }
  resp.headers = framer_.headers();
  resp.body = framer_.take_body();
  framer_.reset();
  done_ = false;
  return resp;
}

void ResponseParser::reset() {
  framer_.reset();
  done_ = false;
}

}  // namespace catalyst::http
