#include "http/etag.h"

#include "util/hash.h"
#include "util/strings.h"

namespace catalyst::http {

std::string Etag::to_string() const {
  std::string out;
  if (weak) out += "W/";
  out.push_back('"');
  out += value;
  out.push_back('"');
  return out;
}

std::optional<Etag> Etag::parse(std::string_view text) {
  text = trim(text);
  Etag etag;
  if (starts_with(text, "W/")) {
    etag.weak = true;
    text = text.substr(2);
  }
  if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
    return std::nullopt;
  }
  const std::string_view inner = text.substr(1, text.size() - 2);
  if (inner.find('"') != std::string_view::npos) return std::nullopt;
  etag.value = std::string(inner);
  return etag;
}

std::optional<IfNoneMatch> IfNoneMatch::parse(std::string_view text) {
  text = trim(text);
  IfNoneMatch out;
  if (text == "*") {
    out.any = true;
    return out;
  }
  for (std::string_view piece : split(text, ',')) {
    piece = trim(piece);
    if (piece.empty()) continue;
    auto tag = Etag::parse(piece);
    if (!tag) return std::nullopt;
    out.tags.push_back(std::move(*tag));
  }
  if (out.tags.empty()) return std::nullopt;
  return out;
}

bool IfNoneMatch::matches(const Etag& current) const {
  if (any) return true;
  for (const Etag& t : tags) {
    if (t.weak_equals(current)) return true;
  }
  return false;
}

Etag make_content_etag(std::string_view content) {
  // 16 hex chars (64 bits) of SHA-1 — the collision risk over a page's
  // resource set is negligible and the header stays compact.
  return Etag{Sha1::hex_digest(content).substr(0, 16), /*weak=*/false};
}

}  // namespace catalyst::http
