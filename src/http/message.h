// HTTP request/response value types with wire-size accounting.
//
// Bodies carry both real content (the browser parses HTML/CSS and "runs"
// JS) and a declared wire size, so large binary resources (images, fonts)
// do not need megabytes of synthetic bytes to cost the right transmission
// time. Invariant: wire body size >= content size, and all timing uses the
// wire size.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "http/cache_control.h"
#include "http/etag.h"
#include "http/headers.h"
#include "http/method.h"
#include "http/status.h"
#include "util/hash.h"
#include "util/types.h"

namespace catalyst::http {

class Request {
 public:
  Method method = Method::Get;
  std::string target = "/";  // path + optional query (origin-form)
  Headers headers;
  std::string body;

  /// Convenience constructor for the common GET case.
  static Request get(std::string_view target, std::string_view host);

  /// Bytes this request occupies on the wire (request line + headers +
  /// blank line + body).
  ByteCount wire_size() const;

  /// Parsed If-None-Match header, if present and well-formed.
  std::optional<IfNoneMatch> if_none_match() const;
};

class Response {
 public:
  Status status = Status::Ok;
  Headers headers;
  std::string body;  // actual content (parsed by the client when relevant)

  /// Declared wire size of the body; when 0 the actual body size is used.
  ByteCount declared_body_size = 0;

  static Response make(Status status);

  /// Body bytes counted on the wire.
  ByteCount body_wire_size() const {
    return declared_body_size > 0 ? declared_body_size : body.size();
  }

  /// Bytes on the wire (status line + headers + blank line + body).
  ByteCount wire_size() const;

  /// Parsed Cache-Control header (empty directives if absent).
  CacheControl cache_control() const;

  /// Parsed ETag header, if present and well-formed.
  std::optional<Etag> etag() const;

  /// FNV-1a digest of `body`, memoized. Replay traces, the Service Worker
  /// integrity check and the byte-equivalence oracle all digest response
  /// bodies, and a body is typically digested several times as the
  /// response travels origin → caches → client; the memo (which copies
  /// travel with the response) makes every digest after the first free.
  /// The cache revalidates on body-size change, which covers every write
  /// pattern in the simulator (bodies are assigned whole, before first
  /// digest); a same-length in-place rewrite after a digest call would
  /// have to call prime_body_digest() — no such writer exists.
  std::uint64_t body_digest() const {
    if (!digest_valid_ || digest_size_ != body.size()) {
      digest_ = fnv1a64(body);
      digest_size_ = body.size();
      digest_valid_ = true;
    }
    return digest_;
  }

  /// Seeds the digest memo with an externally computed value (e.g. the
  /// origin's per-version content digest). Precondition: d == fnv1a64(body).
  void prime_body_digest(std::uint64_t d) const {
    digest_ = d;
    digest_size_ = body.size();
    digest_valid_ = true;
  }

  /// Sets Content-Length from the wire body size and Date from `now`.
  void finalize(TimePoint now);

 private:
  mutable std::uint64_t digest_ = 0;
  mutable ByteCount digest_size_ = 0;
  mutable bool digest_valid_ = false;
};

}  // namespace catalyst::http
