// Incremental HTTP/1.1 message parser (RFC 9112 subset).
//
// Feed bytes in arbitrary chunks; the parser consumes the head section as
// soon as it is complete and then the body according to Content-Length or
// chunked transfer coding (Transfer-Encoding: chunked). Bodies longer
// than the materialized payload (declared sizes) are not a parser
// concern — the parser handles literal wire bytes.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.h"

namespace catalyst::http {

enum class ParseResult {
  NeedMore,  // incomplete; feed more bytes
  Done,      // a full message is available via take()
  Error,     // malformed input; parser must be reset
};

namespace detail {

/// Shared head-section machinery for request/response parsers.
class MessageFramer {
 public:
  ParseResult feed(std::string_view data);

  /// The first line (request line / status line) once the head is parsed.
  const std::string& start_line() const { return start_line_; }
  const Headers& headers() const { return headers_; }
  const std::string& body() const { return body_; }
  std::string take_body() { return std::move(body_); }

  void reset();

 private:
  ParseResult parse_head();
  ParseResult consume_body();
  ParseResult consume_chunked();

  enum class State {
    Head,
    Body,        // fixed-length (Content-Length) body
    ChunkSize,   // reading "<hex>\r\n"
    ChunkData,   // reading chunk payload
    ChunkEnd,    // reading the CRLF after a chunk
    ChunkLast,   // reading the final CRLF after the 0-chunk
    Done,
    Error,
  };
  State state_ = State::Head;
  std::string buffer_;      // unconsumed input
  std::string start_line_;
  Headers headers_;
  std::string body_;        // accumulated body bytes
  std::size_t body_expected_ = 0;  // bytes still missing (Body/ChunkData)
};

}  // namespace detail

/// Parses one HTTP/1.1 request (no pipelining: excess bytes are an error).
class RequestParser {
 public:
  ParseResult feed(std::string_view data);
  /// Valid only after feed() returned Done; resets the parser.
  Request take();
  void reset();

 private:
  detail::MessageFramer framer_;
  bool done_ = false;
};

/// Parses one HTTP/1.1 response.
class ResponseParser {
 public:
  ParseResult feed(std::string_view data);
  Response take();
  void reset();

 private:
  detail::MessageFramer framer_;
  bool done_ = false;
};

}  // namespace catalyst::http
