#include "http/serializer.h"

#include "util/strings.h"

namespace catalyst::http {

std::string serialize(const Request& request) {
  std::string out;
  out.reserve(request.wire_size());
  out.append(to_string(request.method));
  out.push_back(' ');
  out.append(request.target);
  out.append(" HTTP/1.1\r\n");
  for (const auto& field : request.headers.fields()) {
    out.append(field.name);
    out.append(": ");
    out.append(field.value);
    out.append("\r\n");
  }
  out.append("\r\n");
  out.append(request.body);
  return out;
}

std::string serialize_chunked(const Response& response,
                              std::size_t chunk_size) {
  if (chunk_size == 0) chunk_size = 4096;
  Response head = response;
  head.headers.remove(kContentLength);
  head.headers.set("Transfer-Encoding", "chunked");

  std::string out;
  out.append(str_format("HTTP/1.1 %03d ", code(head.status)));
  out.append(reason_phrase(head.status));
  out.append("\r\n");
  for (const auto& field : head.headers.fields()) {
    out.append(field.name);
    out.append(": ");
    out.append(field.value);
    out.append("\r\n");
  }
  out.append("\r\n");
  std::size_t pos = 0;
  while (pos < response.body.size()) {
    const std::size_t take =
        std::min(chunk_size, response.body.size() - pos);
    out.append(str_format("%zx\r\n", take));
    out.append(response.body, pos, take);
    out.append("\r\n");
    pos += take;
  }
  out.append("0\r\n\r\n");
  return out;
}

std::string serialize(const Response& response) {
  std::string out;
  out.append(str_format("HTTP/1.1 %03d ", code(response.status)));
  out.append(reason_phrase(response.status));
  out.append("\r\n");
  for (const auto& field : response.headers.fields()) {
    out.append(field.name);
    out.append(": ");
    out.append(field.value);
    out.append("\r\n");
  }
  out.append("\r\n");
  out.append(response.body);
  return out;
}

}  // namespace catalyst::http
