// Server-side conditional request evaluation (RFC 9110 §13).
//
// This is the status-quo re-validation path the paper targets: the client
// pays a full RTT to learn "304 Not Modified". The evaluator is shared by
// the origin server and the RDR proxy baseline.
#pragma once

#include <optional>

#include "http/etag.h"
#include "http/message.h"
#include "util/types.h"

namespace catalyst::http {

enum class ConditionalOutcome {
  NotConditional,  // request carried no validators
  NotModified,     // validators match: respond 304
  Modified,        // validators do not match: send full representation
};

/// Evaluates If-None-Match (preferred) then If-Modified-Since against the
/// current representation's validators.
ConditionalOutcome evaluate_conditional(
    const Request& request, const Etag& current_etag,
    std::optional<TimePoint> last_modified);

/// Builds a 304 response carrying the validators and cache headers the
/// stored response's metadata should be refreshed from (RFC 9111 §4.3.4).
Response make_not_modified(const Etag& current_etag,
                           const Headers& cache_headers);

}  // namespace catalyst::http
