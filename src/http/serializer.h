// HTTP/1.1 wire serialization (RFC 9112).
//
// The simulator times transfers from wire sizes, but real serialization is
// still exercised end-to-end: tests round-trip messages through the parser
// to guarantee that wire_size() accounting matches actual serialized bytes
// for fully materialized bodies.
#pragma once

#include <string>

#include "http/message.h"

namespace catalyst::http {

/// Serializes a request in origin-form ("GET /path HTTP/1.1").
std::string serialize(const Request& request);

/// Serializes a response. The actual body is emitted; when the declared
/// wire size exceeds the materialized body, the remainder is represented
/// by the Content-Length header only (the simulation's timing authority).
std::string serialize(const Response& response);

/// Serializes a response with chunked transfer coding (RFC 9112 §7.1):
/// the body is split into `chunk_size`-byte chunks; Content-Length is
/// replaced by Transfer-Encoding: chunked.
std::string serialize_chunked(const Response& response,
                              std::size_t chunk_size);

}  // namespace catalyst::http
