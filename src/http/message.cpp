#include "http/message.h"

#include "http/date.h"

namespace catalyst::http {

Request Request::get(std::string_view target, std::string_view host) {
  Request req;
  req.method = Method::Get;
  req.target = std::string(target);
  req.headers.set(kHost, host);
  return req;
}

ByteCount Request::wire_size() const {
  // "<METHOD> <target> HTTP/1.1\r\n" + headers + "\r\n" + body
  return to_string(method).size() + 1 + target.size() + 1 + 8 + 2 +
         headers.wire_size() + 2 + body.size();
}

std::optional<IfNoneMatch> Request::if_none_match() const {
  const auto field = headers.get(kIfNoneMatch);
  if (!field) return std::nullopt;
  return IfNoneMatch::parse(*field);
}

Response Response::make(Status s) {
  Response r;
  r.status = s;
  return r;
}

ByteCount Response::wire_size() const {
  // "HTTP/1.1 <code> <reason>\r\n" + headers + "\r\n" + body
  return 8 + 1 + 3 + 1 + reason_phrase(status).size() + 2 +
         headers.wire_size() + 2 + body_wire_size();
}

CacheControl Response::cache_control() const {
  const auto field = headers.get(kCacheControl);
  if (!field) return CacheControl{};
  return CacheControl::parse(*field);
}

std::optional<Etag> Response::etag() const {
  const auto field = headers.get(kEtagHeader);
  if (!field) return std::nullopt;
  return Etag::parse(*field);
}

void Response::finalize(TimePoint now) {
  headers.set(kContentLength, std::to_string(body_wire_size()));
  headers.set(kDate, format_http_date(now));
}

}  // namespace catalyst::http
