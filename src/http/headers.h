// Case-insensitive, order-preserving HTTP header map (RFC 9110 §5).
//
// Header names compare ASCII-case-insensitively; insertion order is kept so
// serialized messages are byte-stable, which matters because header bytes
// count against transmission time (the X-Etag-Config map rides in a header).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace catalyst::http {

class Headers {
 public:
  struct Field {
    std::string name;
    std::string value;
  };

  /// Appends a field (allows duplicates, e.g. Set-Cookie).
  void add(std::string_view name, std::string_view value);

  /// Replaces all fields of `name` with a single value.
  void set(std::string_view name, std::string_view value);

  /// Removes all fields of `name`; returns how many were removed.
  std::size_t remove(std::string_view name);

  /// First value for `name`, if present.
  std::optional<std::string_view> get(std::string_view name) const;

  /// All values for `name`, in order.
  std::vector<std::string_view> get_all(std::string_view name) const;

  bool contains(std::string_view name) const;

  const std::vector<Field>& fields() const { return fields_; }
  std::size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  /// Wire size of the header block: Σ (name + ": " + value + CRLF).
  ByteCount wire_size() const;

  bool operator==(const Headers& other) const;

 private:
  std::vector<Field> fields_;
};

// Canonical header names used across the codebase (single point of truth so
// typos fail to link rather than silently miss).
inline constexpr std::string_view kCacheControl = "Cache-Control";
inline constexpr std::string_view kContentLength = "Content-Length";
inline constexpr std::string_view kContentType = "Content-Type";
inline constexpr std::string_view kDate = "Date";
inline constexpr std::string_view kEtagHeader = "ETag";
inline constexpr std::string_view kExpires = "Expires";
inline constexpr std::string_view kHost = "Host";
inline constexpr std::string_view kIfModifiedSince = "If-Modified-Since";
inline constexpr std::string_view kIfNoneMatch = "If-None-Match";
inline constexpr std::string_view kLastModified = "Last-Modified";
inline constexpr std::string_view kAge = "Age";
inline constexpr std::string_view kXEtagConfig = "X-Etag-Config";
inline constexpr std::string_view kXForwardedHost = "X-Forwarded-Host";

}  // namespace catalyst::http
