// HTTP date handling (RFC 9110 §5.6.7, IMF-fixdate).
//
// The simulation epoch maps to a fixed calendar instant so Date /
// Last-Modified / Expires headers carry realistic values and the browser
// cache can compute Age the way RFC 9111 prescribes.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/types.h"

namespace catalyst::http {

/// Calendar instant the simulation clock's zero maps to (2026-01-01
/// 00:00:00 GMT, a Thursday).
inline constexpr std::int64_t kEpochUnixSeconds = 1767225600;

/// Formats a simulation TimePoint as an IMF-fixdate string
/// ("Thu, 01 Jan 2026 00:00:00 GMT").
std::string format_http_date(TimePoint t);

/// Parses an IMF-fixdate string back to a simulation TimePoint.
/// Returns nullopt on malformed input or dates before the Unix epoch.
std::optional<TimePoint> parse_http_date(std::string_view text);

}  // namespace catalyst::http
