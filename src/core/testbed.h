// Testbed assembly: network topology + origin server + browser wired for
// one (site, network conditions, strategy) combination.
#pragma once

#include <memory>

#include "check/oracle.h"
#include "client/browser.h"
#include "core/rdr_proxy.h"
#include "core/strategy.h"
#include "edge/node.h"
#include "netsim/conditions.h"
#include "netsim/event_loop.h"
#include "netsim/network.h"
#include "server/server.h"
#include "workload/adversary.h"
#include "workload/sitegen.h"

namespace catalyst::core {

struct Testbed {
  std::unique_ptr<netsim::EventLoop> loop;
  std::unique_ptr<netsim::Network> network;
  // Fault-injection plan the network points at (only when
  // conditions.faults.any(); nullptr on clean runs).
  std::unique_ptr<netsim::FaultPlan> faults;
  std::shared_ptr<server::Site> site;
  std::unique_ptr<server::Server> origin;
  std::unique_ptr<RdrProxy> proxy;  // RdrProxy strategy only
  // Binding of the shared edge PoP onto this testbed's network (only when
  // options.edge_pop is set; the PoP itself is owned by the caller).
  std::unique_ptr<edge::EdgeNode> edge_node;
  // Third-party origins (multi-origin bundles only).
  std::vector<std::shared_ptr<server::Site>> third_party_sites;
  std::vector<std::unique_ptr<server::Server>> third_party_servers;
  // Byte-equivalence oracle (only when options.byte_oracle; the browser's
  // serve classifier points into it).
  std::unique_ptr<check::ByteOracle> byte_oracle;
  // Scripted attacker against the edge PoP (only when
  // options.adversary.enabled and an edge tier exists). run_visit fires
  // one strike ahead of every page load.
  std::unique_ptr<workload::Adversary> adversary;
  std::unique_ptr<client::Browser> browser;
  Url page_url;   // what the user "types": the origin page
  Url fetch_url;  // what the browser actually fetches (proxy for RDR)
  StrategyKind kind = StrategyKind::Baseline;
  netsim::NetworkConditions conditions;
};

/// Builds a ready-to-run testbed. The Site is shared (its change timeline
/// must be identical across the strategies being compared).
Testbed make_testbed(std::shared_ptr<server::Site> site,
                     const netsim::NetworkConditions& conditions,
                     StrategyKind kind,
                     const StrategyOptions& options = {});

/// Multi-origin variant: also brings up plain origin servers for every
/// third-party site, reachable at `options.third_party_rtt_scale` × the
/// client-origin RTT (CDNs peer closer than the main origin).
Testbed make_testbed(const workload::SiteBundle& bundle,
                     const netsim::NetworkConditions& conditions,
                     StrategyKind kind,
                     const StrategyOptions& options = {});

}  // namespace catalyst::core
