#include "core/experiment.h"

#include <stdexcept>

#include "util/json.h"

namespace catalyst::core {

std::vector<Duration> paper_revisit_delays() {
  return {minutes(1), hours(1), hours(6), days(1), days(7)};
}

namespace {

/// RDR visits bypass the page loader: one bundle fetch, then modeled
/// client-side processing of the bundle's contents.
client::PageLoadResult run_rdr_visit(Testbed& tb) {
  client::PageLoadResult result;
  result.start = tb.loop->now();
  bool done = false;

  tb.browser->fetch(
      tb.fetch_url, /*is_navigation=*/true, std::nullopt,
      [&](client::FetchOutcome outcome) {
        // Unpack the bundle and model parse/exec compute.
        ByteCount js_bytes = 0, css_bytes = 0;
        double resources = 1.0;
        if (const auto meta =
                outcome.response.headers.get(kBundleMetaHeader)) {
          if (const auto json = Json::parse(*meta); json && json->is_object()) {
            if (const Json* v = json->find("js_bytes")) {
              js_bytes = static_cast<ByteCount>(v->as_number());
            }
            if (const Json* v = json->find("css_bytes")) {
              css_bytes = static_cast<ByteCount>(v->as_number());
            }
            if (const Json* v = json->find("resources")) {
              resources = v->as_number();
            }
          }
        }
        const auto& pm = tb.browser->processing();
        const Duration compute =
            pm.html_parse_cost(outcome.response.body.size()) +
            pm.css_parse_cost(css_bytes) + pm.js_exec_cost(js_bytes);

        netsim::FetchTrace trace;
        trace.url = tb.fetch_url.path_and_query() + " (bundle)";
        trace.resource_class = http::ResourceClass::Html;
        trace.start = outcome.start;
        trace.finish = outcome.finish;
        trace.source = outcome.source;
        trace.bytes_down = outcome.response.wire_size();
        result.trace.record(std::move(trace));
        result.resources_total = static_cast<std::uint32_t>(resources);
        result.from_network = result.resources_total;
        tb.loop->schedule_after(compute, [&result, &tb, &done] {
          result.onload = tb.loop->now();
          // The bundle renders only when fully processed.
          result.first_paint = result.onload;
          result.interactive = result.onload;
          result.rtts = static_cast<std::uint32_t>(
              tb.browser->fetcher().total_rtts());
          result.bytes_downloaded =
              tb.browser->fetcher().total_bytes_received();
          done = true;
        });
      });

  result.loop_events = tb.loop->run();
  if (!done) {
    throw std::logic_error("run_rdr_visit: load did not complete");
  }
  return result;
}

}  // namespace

client::PageLoadResult run_visit(Testbed& tb, TimePoint at) {
  std::uint64_t events = tb.loop->run();  // drain prior-visit stragglers
  tb.loop->advance_to(at);

  // The adversary strikes ahead of every visit: its poison attempt and
  // timing probes race the victim's page load through the same loop,
  // which is exactly the contention a shared edge tier gives a real
  // attacker. Deterministic — the strike draws only from its own stream.
  if (tb.adversary) {
    tb.adversary->strike();
    events += tb.loop->run();  // land the strike before the victim loads
  }

  if (tb.kind == StrategyKind::RdrProxy) {
    client::PageLoadResult result = run_rdr_visit(tb);
    tb.browser->end_visit();
    result.loop_events += events;
    return result;
  }

  bool done = false;
  client::PageLoadResult result;
  tb.browser->load_page(tb.fetch_url,
                        [&](client::PageLoadResult r) {
                          result = std::move(r);
                          done = true;
                        });
  events += tb.loop->run();
  if (!done) {
    throw std::logic_error("run_visit: page load did not complete");
  }
  tb.browser->end_visit();
  result.loop_events = events;
  return result;
}

RevisitOutcome run_revisit_pair(std::shared_ptr<server::Site> site,
                                const netsim::NetworkConditions& conditions,
                                StrategyKind kind, Duration delay,
                                const StrategyOptions& options) {
  Testbed tb = make_testbed(std::move(site), conditions, kind, options);
  RevisitOutcome outcome;
  outcome.cold = run_visit(tb, TimePoint{});
  outcome.revisit = run_visit(tb, TimePoint{} + delay);
  return outcome;
}

RevisitOutcome run_revisit_pair(const workload::SiteBundle& bundle,
                                const netsim::NetworkConditions& conditions,
                                StrategyKind kind, Duration delay,
                                const StrategyOptions& options) {
  Testbed tb = make_testbed(bundle, conditions, kind, options);
  RevisitOutcome outcome;
  outcome.cold = run_visit(tb, TimePoint{});
  outcome.revisit = run_visit(tb, TimePoint{} + delay);
  return outcome;
}

std::vector<client::PageLoadResult> run_visit_sequence(
    std::shared_ptr<server::Site> site,
    const netsim::NetworkConditions& conditions, StrategyKind kind,
    const std::vector<Duration>& delays, const StrategyOptions& options) {
  Testbed tb = make_testbed(std::move(site), conditions, kind, options);
  std::vector<client::PageLoadResult> results;
  results.push_back(run_visit(tb, TimePoint{}));
  for (const Duration delay : delays) {
    results.push_back(run_visit(tb, TimePoint{} + delay));
  }
  return results;
}

Summary plt_reduction_summary(
    const std::vector<std::shared_ptr<server::Site>>& sites,
    const netsim::NetworkConditions& conditions, StrategyKind treatment,
    StrategyKind baseline, const std::vector<Duration>& delays,
    const StrategyOptions& options) {
  Summary reductions;
  for (const auto& site : sites) {
    for (const Duration delay : delays) {
      const RevisitOutcome base =
          run_revisit_pair(site, conditions, baseline, delay, options);
      const RevisitOutcome treat =
          run_revisit_pair(site, conditions, treatment, delay, options);
      const double base_ms = to_millis(base.revisit.plt());
      const double treat_ms = to_millis(treat.revisit.plt());
      if (base_ms <= 0.0) continue;
      reductions.add(100.0 * (base_ms - treat_ms) / base_ms);
    }
  }
  return reductions;
}

}  // namespace catalyst::core
