#include "core/strategy.h"

namespace catalyst::core {

std::string_view to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::Baseline:
      return "baseline";
    case StrategyKind::Catalyst:
      return "catalyst";
    case StrategyKind::CatalystLearned:
      return "catalyst+learn";
    case StrategyKind::PushAll:
      return "push-all";
    case StrategyKind::PushLearned:
      return "push-learned";
    case StrategyKind::PushDigest:
      return "push-digest";
    case StrategyKind::EarlyHints:
      return "early-hints";
    case StrategyKind::RdrProxy:
      return "rdr-proxy";
    case StrategyKind::Oracle:
      return "oracle";
  }
  return "?";
}

}  // namespace catalyst::core
