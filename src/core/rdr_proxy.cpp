#include "core/rdr_proxy.h"

#include "util/json.h"
#include "util/strings.h"

namespace catalyst::core {

RdrProxy::RdrProxy(netsim::Network& network,
                   std::shared_ptr<server::Site> site,
                   RdrProxyConfig config)
    : network_(network), site_(std::move(site)), config_(std::move(config)) {
  network_.host(config_.proxy_host)
      .set_handler([this](const http::Request& request,
                          std::function<void(netsim::ServerReply)> respond) {
        handle(request, std::move(respond));
      });
}

void RdrProxy::handle(const http::Request& request,
                      std::function<void(netsim::ServerReply)> respond) {
  ++loads_;
  // Headless browser on the proxy host; fresh per load (no user-data
  // bleed between clients — the privacy posture WatchTower argues for).
  client::BrowserConfig bc;
  bc.client_host = config_.proxy_host;
  bc.browser_id = str_format("rdr-%llu",
                             static_cast<unsigned long long>(loads_));
  active_browsers_.push_back(
      std::make_unique<client::Browser>(network_, bc));
  client::Browser* headless = active_browsers_.back().get();

  Url page;
  page.scheme = "https";
  page.host = site_->host();
  const auto q = request.target.find('?');
  page.path = q == std::string::npos ? request.target
                                     : request.target.substr(0, q);

  headless->load_page(
      page, [this, headless, respond = std::move(respond)](
                client::PageLoadResult result) {
        headless->end_visit();

        // Assemble the bundle: the base HTML travels as the literal body
        // (the client still parses it for compute modelling); everything
        // else is represented by the declared bundle size.
        http::Response bundle = http::Response::make(http::Status::Ok);
        ByteCount total = 0, js_bytes = 0, css_bytes = 0;
        std::string html_body;
        for (const netsim::FetchTrace& t : result.trace.traces()) {
          total += t.bytes_down;
          if (t.resource_class == http::ResourceClass::Script) {
            js_bytes += t.bytes_down;
          } else if (t.resource_class == http::ResourceClass::Css) {
            css_bytes += t.bytes_down;
          }
        }
        const auto& traces = result.trace.traces();
        if (!traces.empty()) {
          // First trace is the navigation; recover its body from the
          // proxy's cache-independent fetch is not retained, so embed a
          // placeholder of the right order of magnitude.
          html_body = str_format("<!-- rdr bundle of %zu resources -->",
                                 traces.size());
        }
        bundle.body = std::move(html_body);
        bundle.declared_body_size = std::max<ByteCount>(total, 1);

        Json meta = Json::object();
        meta.set("resources",
                 Json::number(static_cast<double>(traces.size())));
        meta.set("js_bytes", Json::number(static_cast<double>(js_bytes)));
        meta.set("css_bytes",
                 Json::number(static_cast<double>(css_bytes)));
        bundle.headers.set(kBundleMetaHeader, meta.dump());
        bundle.headers.set(http::kCacheControl,
                           http::CacheControl::never_store().to_string());
        bundle.finalize(network_.loop().now());

        netsim::ServerReply reply;
        reply.response = std::move(bundle);
        network_.loop().schedule_after(
            config_.per_load_overhead,
            [respond = std::move(respond),
             reply = std::move(reply)]() mutable {
              respond(std::move(reply));
            });
      });
}

}  // namespace catalyst::core
