// Remote-dependency-resolution proxy baseline (paper §5).
//
// The proxy runs a headless browser on a cloud host with a low-latency
// path to the origin: it resolves the full dependency graph there, then
// ships the whole page to the client as one bundle. Great on cold,
// high-latency loads; oblivious to client caches on revisits (the
// critique the paper makes).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "client/browser.h"
#include "netsim/network.h"
#include "server/site.h"

namespace catalyst::core {

/// Header carrying bundle composition so the client can model its local
/// compute (parse/exec) without unpacking a real container format.
inline constexpr std::string_view kBundleMetaHeader = "X-Bundle-Meta";

struct RdrProxyConfig {
  std::string proxy_host = "rdr.proxy";
  /// Compute budget per proxied load (headless browser work).
  Duration per_load_overhead = milliseconds(2);
};

class RdrProxy {
 public:
  /// Registers `config.proxy_host`'s handler. The host must exist in the
  /// network, with RTTs configured to both client and origin.
  RdrProxy(netsim::Network& network, std::shared_ptr<server::Site> site,
           RdrProxyConfig config);

  std::uint64_t loads_performed() const { return loads_; }

 private:
  void handle(const http::Request& request,
              std::function<void(netsim::ServerReply)> respond);

  netsim::Network& network_;
  std::shared_ptr<server::Site> site_;
  RdrProxyConfig config_;
  std::uint64_t loads_ = 0;
  // One headless browser per in-flight load (no cross-user caching).
  std::vector<std::unique_ptr<client::Browser>> active_browsers_;
};

}  // namespace catalyst::core
