#include "core/testbed.h"

#include <algorithm>

#include "server/catalyst_module.h"

namespace catalyst::core {

Testbed make_testbed(std::shared_ptr<server::Site> site,
                     const netsim::NetworkConditions& conditions,
                     StrategyKind kind, const StrategyOptions& options) {
  Testbed tb;
  tb.kind = kind;
  tb.conditions = conditions;
  tb.site = std::move(site);
  tb.loop = std::make_unique<netsim::EventLoop>();
  tb.loop->set_recorder(options.phase_recorder);
  tb.network = std::make_unique<netsim::Network>(*tb.loop);
  tb.network->set_model_slow_start(options.slow_start);
  tb.network->set_dns_lookup(options.dns_lookup);

  // Fault layer: pay-for-what-you-use. With all knobs zero, no plan is
  // created, transport takes its original paths, and the client runs
  // without timers/retries — output stays byte-identical to clean builds.
  if (conditions.faults.any()) {
    tb.faults = std::make_unique<netsim::FaultPlan>(conditions.faults);
    tb.network->set_fault_plan(tb.faults.get());
  }

  // Topology: throttled client access link; well-provisioned origin.
  netsim::HostSpec client_spec;
  client_spec.uplink = conditions.uplink;
  client_spec.downlink = conditions.downlink;
  tb.network->add_host("client", client_spec);
  tb.network->add_host(tb.site->host());  // default: 1 Gbps
  tb.network->set_rtt("client", tb.site->host(), conditions.rtt);

  // Origin server configuration by strategy.
  server::ServerConfig sc;
  sc.processing_delay = options.server_processing_delay;
  switch (kind) {
    case StrategyKind::Baseline:
    case StrategyKind::Oracle:
    case StrategyKind::RdrProxy:
      break;
    case StrategyKind::Catalyst:
      sc.enable_catalyst = true;
      break;
    case StrategyKind::CatalystLearned:
      sc.enable_catalyst = true;
      sc.catalyst.session_learning = true;
      sc.track_sessions = true;
      break;
    case StrategyKind::PushAll:
      sc.push_policy = server::PushPolicy::All;
      break;
    case StrategyKind::PushLearned:
      sc.push_policy = server::PushPolicy::Learned;
      sc.track_sessions = true;
      break;
    case StrategyKind::PushDigest:
      sc.push_policy = server::PushPolicy::Digest;
      break;
    case StrategyKind::EarlyHints:
      sc.early_hints = true;
      break;
  }
  sc.catalyst.css_closure = options.catalyst_css_closure;
  sc.catalyst.memoize_scans = options.catalyst_memoize;
  sc.error_cache_control = options.error_cache_control;
  // The adversary testbed models a reflection-vulnerable origin: whether
  // the attack lands then depends solely on the edge tier's cache keying.
  sc.reflect_forwarded_host = options.adversary.enabled;
  tb.origin = std::make_unique<server::Server>(*tb.network, tb.site, sc);

  // Browser configuration.
  client::BrowserConfig bc;
  bc.client_host = "client";
  bc.browser_id = "user-1";
  bc.service_workers_enabled = (kind == StrategyKind::Catalyst ||
                                kind == StrategyKind::CatalystLearned);
  if (kind == StrategyKind::PushAll || kind == StrategyKind::PushLearned ||
      kind == StrategyKind::PushDigest) {
    bc.fetcher.protocol = netsim::Protocol::H2;
    bc.send_cache_digest = (kind == StrategyKind::PushDigest);
  } else if (options.browser_protocol) {
    bc.fetcher.protocol = *options.browser_protocol;
  }
  if (options.mobile_client) {
    bc.processing = client::ProcessingModel::mobile();
  }
  // Under injected faults the browser needs deadlines + retries to
  // guarantee every visit completes.
  bc.fetcher.resilience.enabled = conditions.faults.any();
  bc.mutate_serve_stale = options.mutate_stale_serve;
  bc.negative = options.negative_cache;
  tb.browser = std::make_unique<client::Browser>(*tb.network, bc);

  // With an edge tier, main-origin traffic is addressed to the PoP's
  // host; remember it so audits can map those URLs back to the site.
  const std::string edge_host =
      (options.edge_pop != nullptr && kind != StrategyKind::RdrProxy)
          ? options.edge_pop->host_name()
          : std::string();

  // Measurement-only staleness audit: flags cache-served bytes that no
  // longer match the origin. Never changes behaviour.
  {
    auto site_ref = tb.site;
    netsim::EventLoop* loop = tb.loop.get();
    tb.browser->set_staleness_audit(
        [site_ref, loop, edge_host](const Url& url, const http::Etag& etag) {
          if (url.host != site_ref->host() && url.host != edge_host) {
            return true;  // unauditable
          }
          const server::Resource* r = site_ref->find(url.path);
          return r == nullptr ||
                 r->etag_at(loop->now()).weak_equals(etag);
        });
  }

  // Byte-equivalence oracle: audits every delivered body against the
  // site's ground-truth content at fetch time. Measurement-only.
  if (options.byte_oracle) {
    tb.byte_oracle = std::make_unique<check::ByteOracle>();
    // A Catalyst origin legitimately rewrites HTML (SW-registration
    // snippet); ground truth must include the same transform or every
    // decorated serve would read as corruption.
    check::BodyTransform html_transform;
    if (sc.enable_catalyst) {
      html_transform = [](std::string& body) {
        server::CatalystModule::inject_registration(body);
      };
    }
    tb.byte_oracle->add_site(tb.site, html_transform);
    if (!edge_host.empty()) {
      tb.byte_oracle->add_alias(edge_host, tb.site, html_transform);
    }
    check::ByteOracle* oracle = tb.byte_oracle.get();
    tb.browser->set_serve_classifier(
        [oracle](const Url& url, const client::FetchOutcome& outcome) {
          return oracle->classify(url, outcome);
        });
  }

  tb.page_url.scheme = "https";
  tb.page_url.host = tb.site->host();
  tb.page_url.path = tb.site->index_path();
  tb.fetch_url = tb.page_url;

  if (kind == StrategyKind::Oracle) {
    // Perfect validation: compares the cached ETag against the origin's
    // current one with zero network cost.
    auto site_ref = tb.site;
    netsim::EventLoop* loop = tb.loop.get();
    tb.browser->set_oracle(
        [site_ref, loop](const Url& url, const http::Etag& cached) {
          const server::Resource* r = site_ref->find(url.path);
          return r != nullptr &&
                 r->etag_at(loop->now()).weak_equals(cached);
        });
  }

  if (kind == StrategyKind::RdrProxy) {
    RdrProxyConfig pc;
    tb.network->add_host(pc.proxy_host);
    tb.network->set_rtt("client", pc.proxy_host, conditions.rtt);
    tb.network->set_rtt(pc.proxy_host, tb.site->host(),
                        options.rdr_origin_rtt);
    tb.proxy = std::make_unique<RdrProxy>(*tb.network, tb.site, pc);
    tb.fetch_url.host = pc.proxy_host;
    tb.fetch_url.path = tb.site->index_path();
  }

  if (!edge_host.empty()) {
    edge::EdgePop& pop = *options.edge_pop;
    tb.network->add_host(pop.host_name());  // well-provisioned (1 Gbps)
    // The PoP sits on the path: the client-edge leg is what remains of the
    // access RTT after the edge-origin leg, floored at a quarter of the
    // full RTT (even a nearby PoP is not free to reach). A hit saves the
    // origin leg; a miss pays roughly the no-edge path.
    const Duration client_edge_rtt = std::max(
        conditions.rtt - options.edge_origin_rtt, conditions.rtt / 4);
    tb.network->set_rtt("client", pop.host_name(), client_edge_rtt);
    tb.network->set_rtt(pop.host_name(), tb.site->host(),
                        options.edge_origin_rtt);
    tb.edge_node =
        std::make_unique<edge::EdgeNode>(pop, *tb.network, tb.site->host());
    // Main-origin traffic terminates at the PoP; relative subresource
    // references resolve against the page URL, so they follow it there.
    tb.fetch_url.host = pop.host_name();
    tb.page_url.host = pop.host_name();

    if (options.adversary.enabled) {
      // The attacker parks close to the PoP (a well-placed vantage point
      // makes the timing side channel sharper, not weaker).
      const Duration attacker_rtt = milliseconds(10);
      tb.network->add_host(workload::Adversary::kHost);
      tb.network->set_rtt(workload::Adversary::kHost, pop.host_name(),
                          attacker_rtt);
      workload::AdversaryParams ap = options.adversary;
      if (ap.probe_hit_threshold <= Duration::zero()) {
        // Fresh H1+TLS connection: 2 handshake RTTs + 1 exchange RTT to
        // the PoP; an edge miss additionally pays the PoP-origin leg.
        // Halfway into that leg separates the two populations.
        ap.probe_hit_threshold =
            3 * attacker_rtt + options.edge_origin_rtt / 2;
      }
      std::vector<std::string> targets;
      targets.push_back(tb.site->index_path());
      for (const auto& [path, resource] : tb.site->resources()) {
        if (path != tb.site->index_path()) targets.push_back(path);
      }
      tb.adversary = std::make_unique<workload::Adversary>(
          *tb.network, pop, std::move(targets), ap);
    }
  }

  return tb;
}

Testbed make_testbed(const workload::SiteBundle& bundle,
                     const netsim::NetworkConditions& conditions,
                     StrategyKind kind, const StrategyOptions& options) {
  Testbed tb = make_testbed(bundle.main, conditions, kind, options);
  const Duration tp_rtt = seconds_f(
      to_seconds(conditions.rtt) * options.third_party_rtt_scale);
  for (const auto& tp : bundle.third_party) {
    tb.network->add_host(tp->host());
    tb.network->set_rtt("client", tp->host(), tp_rtt);
    if (tb.proxy) {
      tb.network->set_rtt("rdr.proxy", tp->host(),
                          options.rdr_origin_rtt);
    }
    // Third-party origins run stock servers: no catalyst, no push — the
    // main server has no authority over them (paper §6).
    server::ServerConfig sc;
    sc.processing_delay = options.server_processing_delay;
    tb.third_party_servers.push_back(
        std::make_unique<server::Server>(*tb.network, tp, sc));
    tb.third_party_sites.push_back(tp);
  }

  // Extend the byte-equivalence oracle across every origin in the bundle.
  if (tb.byte_oracle) {
    for (const auto& tp : bundle.third_party) {
      tb.byte_oracle->add_site(tp);
    }
  }

  // Extend the staleness audit across all origins in the bundle.
  {
    std::map<std::string, std::shared_ptr<server::Site>> by_host;
    by_host[bundle.main->host()] = bundle.main;
    if (tb.edge_node) {
      by_host[options.edge_pop->host_name()] = bundle.main;
    }
    for (const auto& tp : bundle.third_party) by_host[tp->host()] = tp;
    netsim::EventLoop* loop = tb.loop.get();
    tb.browser->set_staleness_audit(
        [by_host = std::move(by_host), loop](const Url& url,
                                             const http::Etag& etag) {
          const auto it = by_host.find(url.host);
          if (it == by_host.end()) return true;
          const server::Resource* r = it->second->find(url.path);
          return r == nullptr ||
                 r->etag_at(loop->now()).weak_equals(etag);
        });
  }
  return tb;
}

}  // namespace catalyst::core
