// The strategies compared in the evaluation: the paper's CacheCatalyst,
// the status quo, and the related-work baselines of §5.
#pragma once

#include <optional>
#include <string_view>

#include "cache/freshness.h"
#include "http/cache_control.h"
#include "netsim/transport.h"
#include "util/types.h"
#include "workload/adversary.h"

namespace catalyst::edge {
class EdgePop;
}  // namespace catalyst::edge

namespace catalyst::obs {
class Recorder;
}  // namespace catalyst::obs

namespace catalyst::core {

enum class StrategyKind {
  /// Status-quo HTTP caching: max-age / no-cache / no-store honored,
  /// conditional GETs for stale entries.
  Baseline,
  /// CacheCatalyst: X-Etag-Config map + Service Worker (static + CSS
  /// closure coverage — the paper's implemented scope).
  Catalyst,
  /// CacheCatalyst + session learning (paper §6 extension: covers
  /// JS-discovered resources on revisits).
  CatalystLearned,
  /// HTTP/2 Server Push, push-everything policy.
  PushAll,
  /// HTTP/2 Server Push, push what this session fetched last visit.
  PushLearned,
  /// HTTP/2 Server Push guided by a client Cache-Digest (bloom filter of
  /// cached paths) — the Cache-Digest proposal this paper's idea refines.
  PushDigest,
  /// 103 Early Hints: the server announces the static link closure ahead
  /// of the HTML body; the client preloads through its normal cache
  /// semantics (the deployed alternative to both push and catalyst).
  EarlyHints,
  /// Remote dependency resolution proxy (Parcel/Nutshell-style).
  RdrProxy,
  /// Perfect-knowledge lower bound: zero-cost validation of every cached
  /// entry.
  Oracle,
};

std::string_view to_string(StrategyKind kind);

struct StrategyOptions {
  /// Model TCP slow-start ramp-up (ablation; default off).
  bool slow_start = false;

  /// RTT between the RDR proxy and origins (proxies sit in well-peered
  /// clouds near the servers).
  Duration rdr_origin_rtt = milliseconds(6);

  /// Disable the CSS closure in the catalyst map (ablation: HTML-only
  /// scan, stylesheets' fonts/images left uncovered).
  bool catalyst_css_closure = true;

  /// Disable server-side scan memoization (ablation: pay the DOM scan on
  /// every serve).
  bool catalyst_memoize = true;

  /// Origin request-processing delay.
  Duration server_processing_delay = microseconds(500);

  /// Override the browser's transport (e.g. run baseline/catalyst over
  /// HTTP/2 multiplexing instead of 6 × HTTP/1.1). Push strategies ignore
  /// this (they require H2).
  std::optional<netsim::Protocol> browser_protocol;

  /// Model a mobile-class client: slower parse/execute (the paper's
  /// motivating environment).
  bool mobile_client = false;

  /// DNS lookup delay paid on the first connection to each origin.
  Duration dns_lookup = Duration::zero();

  /// Third-party origins sit this factor closer than the main origin
  /// (multi-origin testbeds only).
  double third_party_rtt_scale = 0.6;

  /// Shared edge PoP fronting the main origin (non-owning; nullptr — the
  /// default — means no edge tier and the topology is untouched). The PoP
  /// outlives the testbed: fleet replay binds the same PoP into every
  /// testbed of the users mapped to it. Ignored for RdrProxy, whose proxy
  /// already terminates the page near the origin.
  edge::EdgePop* edge_pop = nullptr;

  /// RTT between an edge PoP and the origin (PoPs sit in well-peered
  /// exchanges, but further out than the RDR cloud proxy).
  Duration edge_origin_rtt = milliseconds(30);

  /// Install the byte-equivalence oracle (check::ByteOracle): every serve
  /// a page load consumes is audited against the origin's ground-truth
  /// content at fetch time. Measurement-only; off by default so existing
  /// runs stay byte-identical.
  bool byte_oracle = false;

  /// StaleServeStrategy mutation for oracle self-tests: the browser treats
  /// every cached entry as fresh, skipping required revalidations. Must be
  /// caught by the oracle; never set outside tests/difftest --mutate.
  bool mutate_stale_serve = false;

  /// Client-side negative caching policy (RFC 9111 §4): bounds under which
  /// the browser's HTTP cache and the Catalyst SW may reuse stored 404/410
  /// responses. Disabled by default — errors are never cached and runs
  /// stay byte-identical.
  cache::NegativePolicy negative_cache;

  /// Explicit Cache-Control the origin attaches to its 404/410 responses
  /// (a negative-caching origin opting in to explicit error freshness).
  /// Unset keeps error responses headerless as before.
  std::optional<http::CacheControl> error_cache_control;

  /// Per-request latency phase recorder (obs::Recorder, non-owning like
  /// edge_pop; nullptr — the default — records nothing). make_testbed
  /// attaches it to the testbed's EventLoop; every instrumented subsystem
  /// reaches it from there. Pure observation on the virtual clock: wiring
  /// a recorder never changes simulation outcomes.
  obs::Recorder* phase_recorder = nullptr;

  /// Scripted attacker (workload::Adversary): poisoning requests with
  /// unkeyed X-Forwarded-Host payloads plus cache-timing probes against
  /// the edge PoP. Requires edge_pop; when enabled the origin also
  /// reflects X-Forwarded-Host into bodies (the vulnerable-origin half of
  /// the attack). Off by default — topology and traffic are untouched.
  workload::AdversaryParams adversary;
};

}  // namespace catalyst::core
