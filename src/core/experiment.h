// Visit sequencing and aggregation — the paper's measurement protocol:
// load each page cold, advance the clock by a revisit delay (1 min, 1 h,
// 6 h, 1 d, 1 w), reload, and compare PLTs across strategies under a grid
// of network conditions.
#pragma once

#include <functional>
#include <vector>

#include "client/metrics.h"
#include "core/testbed.h"
#include "util/stats.h"

namespace catalyst::core {

/// The revisit delays of §4.
std::vector<Duration> paper_revisit_delays();

/// Runs one page visit at absolute simulation time `at` (the loop is
/// advanced there first) and drains all follow-up work (SW registration).
client::PageLoadResult run_visit(Testbed& testbed, TimePoint at);

struct RevisitOutcome {
  client::PageLoadResult cold;
  client::PageLoadResult revisit;
};

/// Cold visit at t=0, revisit after `delay`, in one testbed (caches and
/// Service Worker state persist across the pair; connections do not).
RevisitOutcome run_revisit_pair(std::shared_ptr<server::Site> site,
                                const netsim::NetworkConditions& conditions,
                                StrategyKind kind, Duration delay,
                                const StrategyOptions& options = {});

/// Multi-origin variant (third-party resources live on their own hosts).
RevisitOutcome run_revisit_pair(const workload::SiteBundle& bundle,
                                const netsim::NetworkConditions& conditions,
                                StrategyKind kind, Duration delay,
                                const StrategyOptions& options = {});

/// A whole visit schedule (cold + one revisit per delay, cumulative cache
/// state) in one testbed. Returns cold result first, then one per delay.
std::vector<client::PageLoadResult> run_visit_sequence(
    std::shared_ptr<server::Site> site,
    const netsim::NetworkConditions& conditions, StrategyKind kind,
    const std::vector<Duration>& delays,
    const StrategyOptions& options = {});

/// PLT-reduction study: for each site and delay, measures
///   100 * (PLT_base - PLT_treatment) / PLT_base
/// on the revisit, and accumulates the percentages. This is the quantity
/// Figure 3 plots per network condition.
Summary plt_reduction_summary(
    const std::vector<std::shared_ptr<server::Site>>& sites,
    const netsim::NetworkConditions& conditions, StrategyKind treatment,
    StrategyKind baseline, const std::vector<Duration>& delays,
    const StrategyOptions& options = {});

}  // namespace catalyst::core
